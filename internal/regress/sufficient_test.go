package regress

import (
	"math"
	"math/rand"
	"testing"

	"cape/internal/stats"
)

// refFitConst is the historical elementwise constant fit (mean, perfect
// check by comparing every observation, chi² accumulated term by term),
// kept here as the reference the sufficient-statistics kernel must match.
func refFitConst(ys []float64) (mean, gof float64, err error) {
	mean = stats.Mean(ys)
	perfect := true
	for _, y := range ys {
		if y != mean {
			perfect = false
			break
		}
	}
	if perfect {
		return mean, 1, nil
	}
	if mean <= 0 {
		return mean, 0, nil
	}
	var chi2 float64
	for _, y := range ys {
		d := y - mean
		chi2 += d * d / mean
	}
	dof := float64(len(ys) - 1)
	if dof < 1 {
		dof = 1
	}
	p, err := stats.ChiSquareSF(chi2, dof)
	if err != nil {
		return 0, 0, err
	}
	return mean, stats.Clamp01(p), nil
}

// refFitLinear is the historical slice-of-slices OLS (explicit XᵀX/Xᵀy
// matrices, in-place Gaussian elimination), the reference for FitLinFlat.
func refFitLinear(xs [][]float64, ys []float64) (beta []float64, gof float64, err error) {
	n := len(ys)
	d := len(xs[0])
	p := d + 1

	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	xi := make([]float64, p)
	for r := 0; r < n; r++ {
		xi[0] = 1
		copy(xi[1:], xs[r])
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				xtx[i][j] += xi[i] * xi[j]
			}
			xty[i] += xi[i] * ys[r]
		}
	}
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	for col := 0; col < p; col++ {
		pivot := col
		maxAbs := math.Abs(xtx[col][col])
		for r := col + 1; r < p; r++ {
			if abs := math.Abs(xtx[r][col]); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, 0, ErrSingular
		}
		if pivot != col {
			xtx[col], xtx[pivot] = xtx[pivot], xtx[col]
			xty[col], xty[pivot] = xty[pivot], xty[col]
		}
		inv := 1 / xtx[col][col]
		for r := col + 1; r < p; r++ {
			factor := xtx[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < p; c++ {
				xtx[r][c] -= factor * xtx[col][c]
			}
			xty[r] -= factor * xty[col]
		}
	}
	beta = make([]float64, p)
	for r := p - 1; r >= 0; r-- {
		sum := xty[r]
		for c := r + 1; c < p; c++ {
			sum -= xtx[r][c] * beta[c]
		}
		beta[r] = sum / xtx[r][r]
	}

	var ssRes float64
	for r := 0; r < n; r++ {
		pred := beta[0]
		for i := 0; i < d; i++ {
			pred += beta[i+1] * xs[r][i]
		}
		e := ys[r] - pred
		ssRes += e * e
	}
	ssTot := stats.SumSquaredDev(ys)
	switch {
	case ssTot == 0 && ssRes <= 1e-18:
		gof = 1
	case ssTot == 0:
		gof = 0
	default:
		gof = stats.Clamp01(1 - ssRes/ssTot)
	}
	return beta, gof, nil
}

// randomObservations draws a y-vector from one of several regimes so the
// property test exercises perfect fits, negative means, near-constant
// data, and wide scatter.
func randomObservations(rng *rand.Rand, n int) []float64 {
	ys := make([]float64, n)
	switch rng.Intn(5) {
	case 0: // constant (perfect fit)
		c := rng.Float64()*20 - 5
		for i := range ys {
			ys[i] = c
		}
	case 1: // negative mean
		for i := range ys {
			ys[i] = -rng.Float64()*10 - 0.1
		}
	case 2: // tight cluster around a positive mean
		c := rng.Float64()*50 + 1
		for i := range ys {
			ys[i] = c + rng.NormFloat64()*1e-3
		}
	case 3: // small counts (the Count-aggregate regime)
		for i := range ys {
			ys[i] = float64(rng.Intn(10) + 1)
		}
	default: // wide scatter
		for i := range ys {
			ys[i] = rng.NormFloat64() * 100
		}
	}
	return ys
}

// TestConstStatsMatchesReference: the one-pass sufficient-statistics
// constant fit agrees with the elementwise reference within 1e-9 on both
// the mean and the goodness-of-fit, across random regimes.
func TestConstStatsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40) + 1
		ys := randomObservations(rng, n)

		var s ConstStats
		for _, y := range ys {
			s.Add(y)
		}
		got, err := s.Fit()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantMean, wantGoF, err := refFitConst(ys)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if math.Abs(got.Params()[0]-wantMean) > 1e-9 {
			t.Fatalf("trial %d: mean %g, reference %g (ys=%v)", trial, got.Params()[0], wantMean, ys)
		}
		if math.Abs(got.GoF()-wantGoF) > 1e-9 {
			t.Fatalf("trial %d: gof %g, reference %g (ys=%v)", trial, got.GoF(), wantGoF, ys)
		}
	}
}

// TestConstStatsMinMax: the accumulated extremes equal the elementwise
// extremes exactly — the fast path derives fragment deviation bounds
// from them.
func TestConstStatsMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		ys := randomObservations(rng, rng.Intn(30)+1)
		var s ConstStats
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range ys {
			s.Add(y)
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		if s.Min != lo || s.Max != hi {
			t.Fatalf("trial %d: min/max (%g, %g), want (%g, %g)", trial, s.Min, s.Max, lo, hi)
		}
	}
}

// TestFitLinFlatMatchesReference: the flat-buffer OLS kernel agrees with
// the slice-of-slices reference within 1e-9 on every coefficient and the
// R² goodness-of-fit, with and without scratch reuse.
func TestFitLinFlatMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var scr LinScratch
	for trial := 0; trial < 2000; trial++ {
		d := rng.Intn(3) + 1
		n := rng.Intn(30) + d + 2
		xs := make([][]float64, n)
		flat := make([]float64, 0, n*d)
		for r := range xs {
			row := make([]float64, d)
			for i := range row {
				row[i] = rng.Float64()*100 - 50
			}
			xs[r] = row
			flat = append(flat, row...)
		}
		ys := make([]float64, n)
		for r := range ys {
			pred := rng.Float64()
			for i := 0; i < d; i++ {
				pred += float64(i+1) * xs[r][i]
			}
			ys[r] = pred + rng.NormFloat64()*10
		}

		wantBeta, wantGoF, refErr := refFitLinear(xs, ys)
		scratch := &scr
		if trial%2 == 0 {
			scratch = nil
		}
		got, err := FitLinFlat(flat, d, ys, scratch)
		if (err != nil) != (refErr != nil) {
			t.Fatalf("trial %d: error mismatch: %v vs reference %v", trial, err, refErr)
		}
		if err != nil {
			continue
		}
		gotBeta := got.Params()
		if len(gotBeta) != len(wantBeta) {
			t.Fatalf("trial %d: %d params, reference %d", trial, len(gotBeta), len(wantBeta))
		}
		for i := range gotBeta {
			if math.Abs(gotBeta[i]-wantBeta[i]) > 1e-9 {
				t.Fatalf("trial %d: β[%d] = %g, reference %g", trial, i, gotBeta[i], wantBeta[i])
			}
		}
		if math.Abs(got.GoF()-wantGoF) > 1e-9 {
			t.Fatalf("trial %d: gof %g, reference %g", trial, got.GoF(), wantGoF)
		}
	}
}

// TestFitLinFlatSingular: collinear predictors error identically to the
// reference.
func TestFitLinFlatSingular(t *testing.T) {
	// Second predictor is 2× the first: XᵀX is singular.
	flat := []float64{1, 2, 2, 4, 3, 6, 4, 8}
	ys := []float64{1, 2, 3, 4}
	if _, err := FitLinFlat(flat, 2, ys, nil); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// FuzzConstStats cross-checks the sufficient-statistics fit against the
// elementwise reference on fuzz-generated observation vectors.
func FuzzConstStats(f *testing.F) {
	f.Add(int64(1), 5)
	f.Add(int64(42), 1)
	f.Add(int64(-3), 17)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 1 || n > 200 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		ys := randomObservations(rng, n)
		var s ConstStats
		for _, y := range ys {
			s.Add(y)
		}
		got, err := s.Fit()
		if err != nil {
			t.Fatal(err)
		}
		wantMean, wantGoF, err := refFitConst(ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Params()[0]-wantMean) > 1e-9 || math.Abs(got.GoF()-wantGoF) > 1e-9 {
			t.Fatalf("fit (%g, %g), reference (%g, %g)", got.Params()[0], got.GoF(), wantMean, wantGoF)
		}
	})
}
