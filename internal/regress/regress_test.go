package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func xcol(xs ...float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = []float64{x}
	}
	return out
}

func TestModelTypeString(t *testing.T) {
	if Const.String() != "Const" || Lin.String() != "Lin" {
		t.Error("ModelType names wrong")
	}
	if got := ModelType(7).String(); got != "ModelType(7)" {
		t.Errorf("unknown type rendered %q", got)
	}
}

func TestParseModelType(t *testing.T) {
	for _, s := range []string{"const", "Const", "CONSTANT"} {
		mt, err := ParseModelType(s)
		if err != nil || mt != Const {
			t.Errorf("ParseModelType(%q) = %v, %v", s, mt, err)
		}
	}
	for _, s := range []string{"lin", "Linear"} {
		mt, err := ParseModelType(s)
		if err != nil || mt != Lin {
			t.Errorf("ParseModelType(%q) = %v, %v", s, mt, err)
		}
	}
	if _, err := ParseModelType("quadratic"); err == nil {
		t.Error("expected error for unknown model type")
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(Const, nil, nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := Fit(Lin, xcol(1, 2), []float64{1}); err != ErrEmpty {
		t.Errorf("mismatched lengths: want ErrEmpty, got %v", err)
	}
}

func TestConstPerfectFit(t *testing.T) {
	m, err := Fit(Const, xcol(1, 2, 3), []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.GoF() != 1 {
		t.Errorf("perfect constant data: GoF = %g, want 1", m.GoF())
	}
	if got := m.Predict([]float64{99}); got != 4 {
		t.Errorf("Predict = %g, want 4", got)
	}
	if p := m.Params(); len(p) != 1 || p[0] != 4 {
		t.Errorf("Params = %v", p)
	}
}

func TestConstScatterLowersGoF(t *testing.T) {
	tight, err := Fit(Const, xcol(1, 2, 3, 4), []float64{10, 10.2, 9.8, 10})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Fit(Const, xcol(1, 2, 3, 4), []float64{2, 18, 1, 19})
	if err != nil {
		t.Fatal(err)
	}
	if !(tight.GoF() > loose.GoF()) {
		t.Errorf("tight GoF %g should exceed loose GoF %g", tight.GoF(), loose.GoF())
	}
	if tight.GoF() <= 0 || tight.GoF() > 1 {
		t.Errorf("GoF out of range: %g", tight.GoF())
	}
}

func TestConstNonPositiveMean(t *testing.T) {
	m, err := Fit(Const, xcol(1, 2), []float64{-3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.GoF() != 0 {
		t.Errorf("non-positive mean with scatter: GoF = %g, want 0", m.GoF())
	}
	m, err = Fit(Const, xcol(1, 2), []float64{-3, -3})
	if err != nil {
		t.Fatal(err)
	}
	if m.GoF() != 1 {
		t.Errorf("perfect fit should have GoF 1 regardless of sign, got %g", m.GoF())
	}
}

func TestLinearExactLine(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := xcol(0, 1, 2, 3, 4)
	ys := []float64{3, 5, 7, 9, 11}
	m, err := Fit(Lin, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.GoF(), 1, 1e-9) {
		t.Errorf("R² = %g, want 1", m.GoF())
	}
	p := m.Params()
	if !almostEq(p[0], 3, 1e-9) || !almostEq(p[1], 2, 1e-9) {
		t.Errorf("coefficients = %v, want [3 2]", p)
	}
	if got := m.Predict([]float64{10}); !almostEq(got, 23, 1e-9) {
		t.Errorf("Predict(10) = %g, want 23", got)
	}
}

func TestLinearKnownOLS(t *testing.T) {
	// Hand-computed simple regression: x = 1..5, y = {2,2,3,5,8}.
	// slope = cov/var = 1.5, intercept = mean(y) − slope·mean(x) = 4 − 4.5 = −0.5.
	m, err := Fit(Lin, xcol(1, 2, 3, 4, 5), []float64{2, 2, 3, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	if !almostEq(p[1], 1.5, 1e-9) || !almostEq(p[0], -0.5, 1e-9) {
		t.Errorf("coefficients = %v, want [-0.5 1.5]", p)
	}
	// R² = 1 − SSres/SStot; SStot = 26, SSres = 26 − slope²·Sxx = 26 − 2.25·10 = 3.5.
	if want := 1 - 3.5/26.0; !almostEq(m.GoF(), want, 1e-9) {
		t.Errorf("R² = %g, want %g", m.GoF(), want)
	}
}

func TestLinearMultiVariable(t *testing.T) {
	// y = 1 + 2a − 3b with no noise.
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {3, 2}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2*x[0] - 3*x[1]
	}
	m, err := Fit(Lin, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	if !almostEq(p[0], 1, 1e-8) || !almostEq(p[1], 2, 1e-8) || !almostEq(p[2], -3, 1e-8) {
		t.Errorf("coefficients = %v, want [1 2 -3]", p)
	}
	if !almostEq(m.GoF(), 1, 1e-9) {
		t.Errorf("R² = %g, want 1", m.GoF())
	}
}

func TestLinearSingular(t *testing.T) {
	// All x identical: slope is undefined.
	_, err := Fit(Lin, xcol(5, 5, 5), []float64{1, 2, 3})
	if err != ErrSingular {
		t.Errorf("want ErrSingular, got %v", err)
	}
	// Perfectly collinear two-variable predictors.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	_, err = Fit(Lin, xs, []float64{1, 2, 3, 4})
	if err != ErrSingular {
		t.Errorf("collinear: want ErrSingular, got %v", err)
	}
}

func TestLinearShapeError(t *testing.T) {
	xs := [][]float64{{1}, {2, 3}}
	if _, err := Fit(Lin, xs, []float64{1, 2}); err != ErrShape {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestLinearConstantY(t *testing.T) {
	m, err := Fit(Lin, xcol(1, 2, 3), []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.GoF() != 1 {
		t.Errorf("constant y fit exactly: GoF = %g, want 1", m.GoF())
	}
	if got := m.Predict([]float64{100}); !almostEq(got, 7, 1e-9) {
		t.Errorf("Predict = %g, want 7", got)
	}
}

func TestLinearGoFRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(20)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.NormFloat64() * 10}
			ys[i] = rng.NormFloat64() * 10
		}
		m, err := Fit(Lin, xs, ys)
		if err == ErrSingular {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if m.GoF() < 0 || m.GoF() > 1 {
			t.Fatalf("GoF %g out of [0,1]", m.GoF())
		}
	}
}

func TestLinearResidualOrthogonality(t *testing.T) {
	// OLS property: residuals sum to zero and are orthogonal to predictors.
	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		x := float64(i)
		xs[i] = []float64{x}
		ys[i] = 2 + 0.5*x + rng.NormFloat64()
	}
	m, err := Fit(Lin, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var sumRes, dotRes float64
	for i := range xs {
		r := ys[i] - m.Predict(xs[i])
		sumRes += r
		dotRes += r * xs[i][0]
	}
	if !almostEq(sumRes, 0, 1e-6) {
		t.Errorf("residual sum = %g, want ~0", sumRes)
	}
	if !almostEq(dotRes, 0, 1e-5) {
		t.Errorf("residual·x = %g, want ~0", dotRes)
	}
}

func TestConstGoFOneIffPerfect(t *testing.T) {
	// Property from the paper: GoF = 1 exactly when predictions match all
	// observations.
	f := func(base uint8, deltas []uint8) bool {
		ys := []float64{float64(base%50) + 1}
		perfect := true
		for _, d := range deltas {
			y := float64(base%50) + 1 + float64(d%5)
			if y != ys[0] {
				perfect = false
			}
			ys = append(ys, y)
		}
		m, err := Fit(Const, make([][]float64, len(ys)), ys)
		if err != nil {
			return false
		}
		if perfect {
			return m.GoF() == 1
		}
		// Imperfect fits must stay in range; the p-value can saturate to
		// 1.0 in float64 for tiny chi-square with many degrees of freedom,
		// so strict inequality is only checked deterministically below.
		return m.GoF() >= 0 && m.GoF() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitUnknownModelType(t *testing.T) {
	if _, err := Fit(ModelType(42), xcol(1), []float64{1}); err == nil {
		t.Error("unknown model type should error")
	}
}

func TestPredictShorterVectorThanBeta(t *testing.T) {
	// Predict tolerates shorter x by treating missing predictors as absent.
	m, err := Fit(Lin, [][]float64{{1, 1}, {2, 1}, {3, 2}, {4, 5}}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Predict([]float64{1}) // must not panic
}
