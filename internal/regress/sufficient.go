package regress

import (
	"math"

	"cape/internal/stats"
)

// ConstStats accumulates the sufficient statistics of a constant fit in
// one pass: (n, Σy, Σy², min, max). A Const model and its chi-square
// goodness-of-fit are derivable from these five numbers alone, so the
// mining hot path never materializes an observation slice — or the dummy
// predictor matrix the generic Fit API requires — for Const candidates.
type ConstStats struct {
	N          int
	Sum, SumSq float64
	Min, Max   float64
}

// Add folds one observation into the statistics. Observations must be
// added in dataset order so the accumulated Σy reproduces the mean of a
// slice-based fit bit for bit.
func (s *ConstStats) Add(y float64) {
	if s.N == 0 {
		s.Min, s.Max = y, y
	} else if y < s.Min {
		s.Min = y
	} else if y > s.Max {
		s.Max = y
	}
	s.N++
	s.Sum += y
	s.SumSq += y * y
}

// Reset clears the statistics for reuse.
func (s *ConstStats) Reset() { *s = ConstStats{} }

// FitParams computes the Const fit from the accumulated statistics
// without materializing a Model, so hot paths that discard most fits
// (goodness-of-fit below threshold) allocate nothing for the rejects.
// The mean is Σy/n; the fit is perfect exactly when min = max = mean
// (min = max alone is not enough: for a constant sample whose mean
// rounds away from the constant, the historical elementwise check
// y ≠ mean declared the fit imperfect, and this must too). Otherwise
// the Pearson statistic is expanded as χ² = (Σy² − 2·mean·Σy +
// n·mean²)/mean (clamped at 0 against catastrophic cancellation) and
// converted to a p-value with n−1 degrees of freedom, as in the
// slice-based fit.
func (s *ConstStats) FitParams() (mean, gof float64, err error) {
	if s.N == 0 {
		return 0, 0, ErrEmpty
	}
	mean = s.Sum / float64(s.N)
	if s.Min == s.Max && s.Min == mean {
		return mean, 1, nil
	}
	if mean <= 0 {
		return mean, 0, nil
	}
	chi2 := (s.SumSq - 2*mean*s.Sum + float64(s.N)*mean*mean) / mean
	if chi2 < 0 {
		chi2 = 0
	}
	dof := float64(s.N - 1)
	if dof < 1 {
		dof = 1
	}
	p, err := stats.ChiSquareSF(chi2, dof)
	if err != nil {
		return 0, 0, err
	}
	return mean, stats.Clamp01(p), nil
}

// Fit builds the Const model from the accumulated statistics (see
// FitParams for the arithmetic).
func (s *ConstStats) Fit() (Model, error) {
	mean, gof, err := s.FitParams()
	if err != nil {
		return nil, err
	}
	return &constModel{mean: mean, gof: gof}, nil
}

// NewConst materializes the Const model described by FitParams output.
func NewConst(mean, gof float64) Model {
	return &constModel{mean: mean, gof: gof}
}

// LinScratch holds the normal-equation buffers FitLinInto reuses across
// calls, so a mining run fitting thousands of fragments performs no
// per-fit matrix allocation. The zero value is ready to use.
type LinScratch struct {
	xtx, xty []float64
	beta     []float64 // solution of the latest FitLinInto call
	betaN    int
}

func (s *LinScratch) grow(p int) (xtx, xty []float64) {
	if cap(s.xtx) < p*p {
		s.xtx = make([]float64, p*p)
	}
	if cap(s.xty) < p {
		s.xty = make([]float64, p)
	}
	xtx, xty = s.xtx[:p*p], s.xty[:p]
	for i := range xtx {
		xtx[i] = 0
	}
	for i := range xty {
		xty[i] = 0
	}
	return xtx, xty
}

// FitLinInto fits ordinary least squares with an intercept over
// n = len(ys) observations whose predictor vectors are stored row-major
// in x with stride d (len(x) = n·d). It accumulates XᵀX and Xᵀy in a
// single pass over the flat buffer — no [][]float64 is ever built — and
// solves the normal equations by Gaussian elimination with partial
// pivoting, leaving the coefficients in scr (valid until the next call)
// and returning only the R² goodness of fit: nothing is allocated, so
// callers that reject most fits pay for a Model (scr.Model) only on the
// fits they keep. The arithmetic (accumulation order, pivoting, R²
// residual pass) is identical to the historical slice-of-slices
// implementation, so fits agree bit for bit.
func FitLinInto(x []float64, d int, ys []float64, scr *LinScratch) (gof float64, err error) {
	n := len(ys)
	if n == 0 {
		return 0, ErrEmpty
	}
	if d < 0 || len(x) != n*d {
		return 0, ErrShape
	}
	p := d + 1 // intercept + predictors

	xtx, xty := scr.grow(p)
	for r := 0; r < n; r++ {
		row := x[r*d : r*d+d]
		y := ys[r]
		// Intercept row: xi[0] = 1, so products reduce to the raw values.
		xtx[0]++
		for j := 1; j < p; j++ {
			xtx[j] += row[j-1]
		}
		xty[0] += y
		for i := 1; i < p; i++ {
			xi := row[i-1]
			base := i * p
			for j := i; j < p; j++ {
				xtx[base+j] += xi * row[j-1]
			}
			xty[i] += xi * y
		}
	}
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i*p+j] = xtx[j*p+i]
		}
	}

	if cap(scr.beta) < p {
		scr.beta = make([]float64, p)
	}
	beta := scr.beta[:p]
	scr.betaN = p
	if err := solveFlat(xtx, xty, p, beta); err != nil {
		return 0, err
	}

	// The residual pass evaluates predictions through the same method the
	// materialized model will use, so GoF and Predict agree bit for bit.
	m := linearModel{beta: beta}
	var ssRes float64
	for r := 0; r < n; r++ {
		e := ys[r] - m.Predict(x[r*d:r*d+d])
		ssRes += e * e
	}
	ssTot := stats.SumSquaredDev(ys)
	switch {
	case ssTot == 0 && ssRes <= 1e-18:
		gof = 1
	case ssTot == 0:
		gof = 0
	default:
		gof = stats.Clamp01(1 - ssRes/ssTot)
	}
	return gof, nil
}

// Model materializes the solution of the most recent successful
// FitLinInto call as a linear Model with the given goodness of fit. The
// coefficients are copied out of the scratch.
func (s *LinScratch) Model(gof float64) Model {
	return &linearModel{beta: append([]float64(nil), s.beta[:s.betaN]...), gof: gof}
}

// FitLinFlat is FitLinInto plus materialization: it fits and returns the
// Model. scr may be nil; passing one reuses its buffers. The returned
// model retains no scratch memory.
func FitLinFlat(x []float64, d int, ys []float64, scr *LinScratch) (Model, error) {
	var local LinScratch
	if scr == nil {
		scr = &local
	}
	gof, err := FitLinInto(x, d, ys, scr)
	if err != nil {
		return nil, err
	}
	return scr.Model(gof), nil
}

// solveFlat solves the n×n system A·x = b where a is row-major, using
// Gaussian elimination with partial pivoting, writing the solution into
// x (length n). a and b are modified in place (they are scratch).
// Returns ErrSingular when a pivot is numerically zero (collinear
// predictors or fewer distinct points than coefficients).
func solveFlat(a []float64, b []float64, n int, x []float64) error {
	for col := 0; col < n; col++ {
		pivot := col
		maxAbs := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r*n+col]); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return ErrSingular
		}
		if pivot != col {
			pr, cr := a[pivot*n:pivot*n+n], a[col*n:col*n+n]
			for i := range cr {
				cr[i], pr[i] = pr[i], cr[i]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			factor := a[r*n+col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r*n+c] -= factor * a[col*n+c]
			}
			b[r] -= factor * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r*n+c] * x[c]
		}
		x[r] = sum / a[r*n+r]
	}
	return nil
}
