package pattern

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// sortedGroupedTable builds a small grouped-shaped table (partition
// columns f0/f1, predictor v, aggregate column count(*)) whose rows are
// already in fragment order — the layout the compressed-run boundary
// tier requires.
func sortedGroupedTable(rng *rand.Rand, n int) *engine.Table {
	tab := engine.NewTable(engine.Schema{
		{Name: "f0", Kind: value.String},
		{Name: "f1", Kind: value.Int},
		{Name: "v", Kind: value.Int},
		{Name: "count(*)", Kind: value.Int},
	})
	f0, f1 := 0, 0
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			f1++
			if rng.Intn(3) == 0 {
				f0++
			}
		}
		tab.MustAppend(value.Tuple{
			value.NewString(fmt.Sprintf("g%d", f0)),
			value.NewInt(int64(f1)),
			value.NewInt(int64(i % 7)),
			value.NewInt(int64(1 + rng.Intn(5))),
		})
	}
	return tab
}

// TestFragmentEndsTiers pins the three boundary tiers — compressed-run
// intersection, dense sort codes, boxed comparison — to one another on
// the same table.
func TestFragmentEndsTiers(t *testing.T) {
	aggs := []engine.AggSpec{{Func: engine.Count}}
	th := Thresholds{Theta: 0.1, LocalSupport: 1, Lambda: 0.1, GlobalSupport: 1}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := sortedGroupedTable(rng, rng.Intn(120))
		n := tab.NumRows()
		for _, f := range [][]string{{"f0"}, {"f1"}, {"f0", "f1"}, nil} {
			fIdx, err := tab.Schema().Indices(f)
			if err != nil {
				t.Fatal(err)
			}

			sf, err := NewSharedFitter(tab, aggs, []regress.ModelType{regress.Const}, th)
			if err != nil {
				t.Fatal(err)
			}
			boxed := append([]int32(nil), sf.fragmentEnds(fIdx, nil, nil, n)...)

			// Dense sort codes, identity order.
			codes, err := engine.BuildSortCodes(tab, []string{"f0", "f1"})
			if err != nil {
				t.Fatal(err)
			}
			var fCodes [][]int32
			for _, a := range f {
				fCodes = append(fCodes, codes.Codes(a))
			}
			if len(f) > 0 {
				coded := sf.fragmentEnds(fIdx, fCodes, nil, n)
				if !reflect.DeepEqual(boxed, coded) {
					t.Fatalf("seed %d f=%v: code tier %v != boxed tier %v", seed, f, coded, boxed)
				}
				// Identity permutation through the perm tier.
				perm := make([]int32, n)
				for i := range perm {
					perm[i] = int32(i)
				}
				permEnds := sf.fragmentEnds(fIdx, fCodes, perm, n)
				if !reflect.DeepEqual(boxed, permEnds) {
					t.Fatalf("seed %d f=%v: perm tier %v != boxed tier %v", seed, f, permEnds, boxed)
				}
			}

			// Compressed-run intersection.
			comp := tab.Clone()
			if err := comp.CompressColumns(); err != nil {
				t.Fatal(err)
			}
			sfc, err := NewSharedFitter(comp, aggs, []regress.ModelType{regress.Const}, th)
			if err != nil {
				t.Fatal(err)
			}
			var ends []int32
			if len(fIdx) > 0 && n > 0 {
				if !sfc.appendCompressedRuns(fIdx, n, &ends) {
					t.Fatalf("seed %d f=%v: compressed views missing", seed, f)
				}
			} else {
				ends = sfc.fragmentEnds(fIdx, nil, nil, n)
			}
			if !reflect.DeepEqual(boxed, append([]int32(nil), ends...)) && !(len(boxed) == 0 && len(ends) == 0) {
				t.Fatalf("seed %d f=%v: compressed tier %v != boxed tier %v", seed, f, ends, boxed)
			}
		}
	}
}

// TestFitCompressedBoundaries runs the full Fit pipeline with and
// without compressed views over a fragment-ordered table and requires
// identical mining output.
func TestFitCompressedBoundaries(t *testing.T) {
	aggs := []engine.AggSpec{{Func: engine.Count}}
	models := []regress.ModelType{regress.Const, regress.Lin}
	th := Thresholds{Theta: 0.1, LocalSupport: 2, Lambda: 0.3, GlobalSupport: 1}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := sortedGroupedTable(rng, 150)

		plain, err := NewSharedFitter(tab, aggs, models, th)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Fit([]string{"f0"}, []string{"v"}, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}

		comp := tab.Clone()
		if err := comp.CompressColumns(); err != nil {
			t.Fatal(err)
		}
		fitter, err := NewSharedFitter(comp, aggs, models, th)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fitter.Fit([]string{"f0"}, []string{"v"}, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}

		if len(got) != len(want) {
			t.Fatalf("seed %d: %d mined patterns, want %d", seed, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Pattern.Key() != w.Pattern.Key() ||
				g.NumFragments != w.NumFragments ||
				g.NumSupported != w.NumSupported ||
				g.Confidence != w.Confidence ||
				len(g.Locals) != w.GlobalSupport() {
				t.Fatalf("seed %d pattern %d: compressed fit diverges: %+v vs %+v", seed, i, g, w)
			}
			for k, lw := range w.Locals {
				lg, ok := g.Locals[k]
				if !ok || lg.Support != lw.Support ||
					lg.MaxPosDev != lw.MaxPosDev || lg.MaxNegDev != lw.MaxNegDev {
					t.Fatalf("seed %d pattern %d fragment %q: local model diverges", seed, i, k)
				}
			}
		}
	}
}
