package pattern

import (
	"fmt"
	"time"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// Timers accumulates per-subtask wall-clock time during mining, feeding
// the Figure-4 breakdown (regression vs. query processing vs. the rest).
type Timers struct {
	Query      time.Duration // group-by / sort / cube evaluation
	Regression time.Duration // model fitting + goodness-of-fit
	Other      time.Duration // candidate enumeration, bookkeeping
}

// Add accumulates another Timers into t.
func (t *Timers) Add(o Timers) {
	t.Query += o.Query
	t.Regression += o.Regression
	t.Other += o.Other
}

// Total is the sum of all subtask durations.
func (t *Timers) Total() time.Duration { return t.Query + t.Regression + t.Other }

// EncodePredictors converts a tuple of predictor values to the float
// vector regression consumes. ok is false when any value is non-numeric
// (NULL or string) — such points cannot train a Lin model.
func EncodePredictors(vs value.Tuple) ([]float64, bool) {
	out := make([]float64, len(vs))
	for i, v := range vs {
		f, numeric := v.AsFloat()
		if !numeric {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// FitShared evaluates, in a single scan of dSorted, every pattern that
// shares the partition attributes f and predictor attributes v: one
// candidate per (aggregate column, model type) combination. dSorted must
// be the result of grouping on f ∪ v, sorted by f then v, and must
// contain one column per aggregate in aggs named engine.AggSpec.String().
// The returned slice holds one *Mined per candidate that holds globally
// under th. This implements the paper's "one query for all patterns
// sharing F and V" optimization plus Algorithm 6's block scan.
func FitShared(f, v []string, aggs []engine.AggSpec, models []regress.ModelType,
	dSorted *engine.Table, th Thresholds, tm *Timers) ([]*Mined, error) {

	if err := th.Validate(); err != nil {
		return nil, err
	}
	// Canonicalize attribute order so the same (F, V) pair produces
	// identical pattern keys and fragment keys regardless of which sort
	// order or enumeration order discovered it. Fragment blocks in
	// dSorted stay consecutive under any permutation of F.
	f = sortedCopy(f)
	v = sortedCopy(v)
	sch := dSorted.Schema()
	fIdx, err := sch.Indices(f)
	if err != nil {
		return nil, err
	}
	vIdx, err := sch.Indices(v)
	if err != nil {
		return nil, err
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		ci := sch.Index(a.String())
		if ci < 0 {
			return nil, fmt.Errorf("pattern: sorted input missing aggregate column %q", a.String())
		}
		aggIdx[i] = ci
	}

	type candState struct {
		p       Pattern
		mined   *Mined
		numSupp int
		numFrag int
	}
	// cands[ai*len(models)+mi] is the candidate for aggregate ai, model mi.
	cands := make([]*candState, 0, len(aggs)*len(models))
	for _, a := range aggs {
		for _, m := range models {
			p := Pattern{F: f, V: v, Agg: a, Model: m}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			cands = append(cands, &candState{
				p: p,
				mined: &Mined{
					Pattern: p,
					Locals:  make(map[string]*LocalModel),
				},
			})
		}
	}

	// Scan fragment blocks; dSorted is sorted by F so each fragment is a
	// consecutive run of rows.
	rows := dSorted.Rows()
	start := 0
	flushFragment := func(lo, hi int) error {
		frag := make(value.Tuple, len(fIdx))
		for i, ci := range fIdx {
			frag[i] = rows[lo][ci]
		}
		// Encode the fragment's predictor points once.
		n := hi - lo
		xs := make([][]float64, 0, n)
		numericX := true
		vt := make(value.Tuple, len(vIdx))
		for r := lo; r < hi && numericX; r++ {
			for i, ci := range vIdx {
				vt[i] = rows[r][ci]
			}
			enc, ok := EncodePredictors(vt)
			if !ok {
				numericX = false
				break
			}
			xs = append(xs, enc)
		}

		for ai := range aggs {
			// Extract the aggregate observations once per aggregate.
			ys := make([]float64, 0, n)
			numericY := true
			for r := lo; r < hi; r++ {
				fv, numeric := rows[r][aggIdx[ai]].AsFloat()
				if !numeric {
					numericY = false
					break
				}
				ys = append(ys, fv)
			}
			for mi := range models {
				cs := cands[ai*len(models)+mi]
				cs.numFrag++
				if !numericY || len(ys) < th.LocalSupport {
					continue // insufficient local support
				}
				cs.numSupp++
				if cs.p.Model == regress.Lin && !numericX {
					continue // Lin needs numeric predictors
				}
				var x [][]float64
				if cs.p.Model == regress.Lin {
					x = xs
				} else {
					x = make([][]float64, len(ys))
				}
				t0 := time.Now()
				model, ferr := regress.Fit(cs.p.Model, x, ys)
				if tm != nil {
					tm.Regression += time.Since(t0)
				}
				if ferr != nil {
					continue // singular fit etc.: pattern does not hold here
				}
				if model.GoF() < th.Theta {
					continue
				}
				lm := &LocalModel{
					Frag:    frag,
					Model:   model,
					Support: len(ys),
				}
				for i, y := range ys {
					var pred float64
					if cs.p.Model == regress.Lin {
						pred = model.Predict(xs[i])
					} else {
						pred = model.Predict(nil)
					}
					dev := y - pred
					if dev > lm.MaxPosDev {
						lm.MaxPosDev = dev
					}
					if dev < lm.MaxNegDev {
						lm.MaxNegDev = dev
					}
				}
				cs.mined.Locals[frag.Key()] = lm
				if lm.MaxPosDev > cs.mined.MaxPosDev {
					cs.mined.MaxPosDev = lm.MaxPosDev
				}
				if lm.MaxNegDev < cs.mined.MaxNegDev {
					cs.mined.MaxNegDev = lm.MaxNegDev
				}
			}
		}
		return nil
	}

	for r := 1; r <= len(rows); r++ {
		boundary := r == len(rows)
		if !boundary {
			for _, ci := range fIdx {
				if !value.Equal(rows[r][ci], rows[r-1][ci]) {
					boundary = true
					break
				}
			}
		}
		if boundary {
			if err := flushFragment(start, r); err != nil {
				return nil, err
			}
			start = r
		}
	}

	// Decide global holding per candidate (Definition 4).
	var out []*Mined
	for _, cs := range cands {
		good := len(cs.mined.Locals)
		if good < th.GlobalSupport || cs.numSupp == 0 {
			continue
		}
		conf := float64(good) / float64(cs.numSupp)
		if conf < th.Lambda {
			continue
		}
		cs.mined.NumFragments = cs.numFrag
		cs.mined.NumSupported = cs.numSupp
		cs.mined.Confidence = conf
		out = append(out, cs.mined)
	}
	return out, nil
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sortStrings(out)
	return out
}

// Fit evaluates a single pattern against the relation r (ungrouped input
// data), running the grouping and sorting itself. It is the reference
// implementation used by tests and the naive miner.
func Fit(p Pattern, r *engine.Table, th Thresholds, tm *Timers) (*Mined, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	grouped, err := r.GroupBy(p.GroupAttrs(), []engine.AggSpec{p.Agg})
	if err != nil {
		return nil, err
	}
	if err := grouped.SortBy(p.GroupAttrs()); err != nil {
		return nil, err
	}
	if tm != nil {
		tm.Query += time.Since(t0)
	}
	res, err := FitShared(p.F, p.V, []engine.AggSpec{p.Agg},
		[]regress.ModelType{p.Model}, grouped, th, tm)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, nil
	}
	return res[0], nil
}
