package pattern

import (
	"time"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// Timers accumulates per-subtask wall-clock time during mining, feeding
// the Figure-4 breakdown (regression vs. query processing vs. the rest).
type Timers struct {
	Query      time.Duration // group-by / sort / cube evaluation
	Regression time.Duration // model fitting + goodness-of-fit
	Other      time.Duration // candidate enumeration, bookkeeping
}

// Add accumulates another Timers into t.
func (t *Timers) Add(o Timers) {
	t.Query += o.Query
	t.Regression += o.Regression
	t.Other += o.Other
}

// Total is the sum of all subtask durations.
func (t *Timers) Total() time.Duration { return t.Query + t.Regression + t.Other }

// EncodePredictors converts a tuple of predictor values to the float
// vector regression consumes. ok is false when any value is non-numeric
// (NULL or string) — such points cannot train a Lin model.
func EncodePredictors(vs value.Tuple) ([]float64, bool) {
	out := make([]float64, len(vs))
	for i, v := range vs {
		f, numeric := v.AsFloat()
		if !numeric {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// FitShared evaluates, in a single scan of dSorted, every pattern that
// shares the partition attributes f and predictor attributes v: one
// candidate per (aggregate column, model type) combination. dSorted must
// be the result of grouping on f ∪ v, sorted by f then v, and must
// contain one column per aggregate in aggs named engine.AggSpec.String().
// The returned slice holds one *Mined per candidate that holds globally
// under th.
//
// FitShared is the convenience entry point: it builds a SharedFitter and
// scans dSorted in row order. Miners that evaluate many (F, V) splits
// over one grouped table construct a SharedFitter once and call its Fit
// with a sorted permutation instead.
func FitShared(f, v []string, aggs []engine.AggSpec, models []regress.ModelType,
	dSorted *engine.Table, th Thresholds, tm *Timers) ([]*Mined, error) {

	sf, err := NewSharedFitter(dSorted, aggs, models, th)
	if err != nil {
		return nil, err
	}
	return sf.Fit(f, v, nil, nil, tm)
}

// SortedCopy returns the strings in ascending order without modifying
// the input. Pattern keys, fragment keys, and mining sort orders all use
// this canonical attribute order.
func SortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sortStrings(out)
	return out
}

// Fit evaluates a single pattern against the relation r (ungrouped input
// data), running the grouping and sorting itself. It is the reference
// implementation used by tests and the naive miner.
func Fit(p Pattern, r *engine.Table, th Thresholds, tm *Timers) (*Mined, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	grouped, err := r.GroupBy(p.GroupAttrs(), []engine.AggSpec{p.Agg})
	if err != nil {
		return nil, err
	}
	if err := grouped.SortBy(p.GroupAttrs()); err != nil {
		return nil, err
	}
	if tm != nil {
		tm.Query += time.Since(t0)
	}
	res, err := FitShared(p.F, p.V, []engine.AggSpec{p.Agg},
		[]regress.ModelType{p.Model}, grouped, th, tm)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, nil
	}
	return res[0], nil
}
