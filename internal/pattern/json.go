package pattern

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// The JSON wire format lets the offline mining phase persist its output
// for the online explanation phase — the deployment split the paper's
// architecture assumes.

type jsonLocal struct {
	Frag      value.Tuple `json:"frag"`
	Params    []float64   `json:"params"`
	GoF       float64     `json:"gof"`
	Support   int         `json:"support"`
	MaxPosDev float64     `json:"maxPosDev"`
	MaxNegDev float64     `json:"maxNegDev"`
}

type jsonMined struct {
	F            []string    `json:"f"`
	V            []string    `json:"v"`
	Agg          string      `json:"agg"`
	AggArg       string      `json:"aggArg,omitempty"`
	Model        string      `json:"model"`
	NumFragments int         `json:"numFragments"`
	NumSupported int         `json:"numSupported"`
	Confidence   float64     `json:"confidence"`
	MaxPosDev    float64     `json:"maxPosDev"`
	MaxNegDev    float64     `json:"maxNegDev"`
	Locals       []jsonLocal `json:"locals"`
}

// toJSON converts mined patterns to the wire representation. Local
// models are emitted in sorted fragment-key order, so the same pattern
// set always serializes to the same bytes (the Locals map itself has no
// order) — which keeps persisted pattern stores diffable.
func toJSON(patterns []*Mined) []jsonMined {
	out := make([]jsonMined, 0, len(patterns))
	for _, m := range patterns {
		jm := jsonMined{
			F:            m.Pattern.F,
			V:            m.Pattern.V,
			Agg:          m.Pattern.Agg.Func.String(),
			AggArg:       m.Pattern.Agg.Arg,
			Model:        m.Pattern.Model.String(),
			NumFragments: m.NumFragments,
			NumSupported: m.NumSupported,
			Confidence:   m.Confidence,
			MaxPosDev:    m.MaxPosDev,
			MaxNegDev:    m.MaxNegDev,
		}
		keys := make([]string, 0, len(m.Locals))
		for k := range m.Locals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			lm := m.Locals[k]
			jm.Locals = append(jm.Locals, jsonLocal{
				Frag:      lm.Frag,
				Params:    lm.Model.Params(),
				GoF:       lm.Model.GoF(),
				Support:   lm.Support,
				MaxPosDev: lm.MaxPosDev,
				MaxNegDev: lm.MaxNegDev,
			})
		}
		out = append(out, jm)
	}
	return out
}

// WriteJSON serializes mined patterns (with their local models) to w.
func WriteJSON(w io.Writer, patterns []*Mined) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(toJSON(patterns))
}

// ReadJSON deserializes mined patterns written by WriteJSON.
func ReadJSON(r io.Reader) ([]*Mined, error) {
	var in []jsonMined
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("pattern: decoding patterns JSON: %w", err)
	}
	return fromJSON(in)
}

// fromJSON rebuilds mined patterns from the wire representation.
func fromJSON(in []jsonMined) ([]*Mined, error) {
	out := make([]*Mined, 0, len(in))
	for i, jm := range in {
		aggFunc, err := engine.ParseAggFunc(jm.Agg)
		if err != nil {
			return nil, fmt.Errorf("pattern: entry %d: %w", i, err)
		}
		modelType, err := regress.ParseModelType(jm.Model)
		if err != nil {
			return nil, fmt.Errorf("pattern: entry %d: %w", i, err)
		}
		m := &Mined{
			Pattern: Pattern{
				F:     jm.F,
				V:     jm.V,
				Agg:   engine.AggSpec{Func: aggFunc, Arg: jm.AggArg},
				Model: modelType,
			},
			Locals:       make(map[string]*LocalModel, len(jm.Locals)),
			NumFragments: jm.NumFragments,
			NumSupported: jm.NumSupported,
			Confidence:   jm.Confidence,
			MaxPosDev:    jm.MaxPosDev,
			MaxNegDev:    jm.MaxNegDev,
		}
		if err := m.Pattern.Validate(); err != nil {
			return nil, fmt.Errorf("pattern: entry %d: %w", i, err)
		}
		for _, jl := range jm.Locals {
			model, err := regress.FromParams(modelType, jl.Params, jl.GoF)
			if err != nil {
				return nil, fmt.Errorf("pattern: entry %d fragment %v: %w", i, jl.Frag, err)
			}
			m.Locals[jl.Frag.Key()] = &LocalModel{
				Frag:      jl.Frag,
				Model:     model,
				Support:   jl.Support,
				MaxPosDev: jl.MaxPosDev,
				MaxNegDev: jl.MaxNegDev,
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// WriteJSONFile writes patterns to the named file.
func WriteJSONFile(path string, patterns []*Mined) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteJSON(f, patterns)
}

// ReadJSONFile loads patterns from the named file.
func ReadJSONFile(path string) ([]*Mined, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
