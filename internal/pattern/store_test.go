package pattern

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStoreRoundTrip: SaveStore → LoadStore must reproduce the pattern
// set exactly, per table, and the directory listing form must agree
// with loading the file directly.
func TestStoreRoundTrip(t *testing.T) {
	patterns := minedForJSON(t)
	dir := t.TempDir()
	path, err := SaveStore(dir, "pub", patterns)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasSuffix(path, ".patterns.json") {
		t.Fatalf("store path = %q", path)
	}

	table, back, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if table != "pub" {
		t.Fatalf("table = %q", table)
	}
	requireSamePatterns(t, patterns, back)

	all, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("LoadStore returned %d tables", len(all))
	}
	requireSamePatterns(t, patterns, all["pub"])
}

// requireSamePatterns compares pattern sets the same way the JSON
// round-trip test does: keys, counters, and every local model.
func requireSamePatterns(t *testing.T, want, got []*Mined) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d vs %d patterns", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Pattern.Key() != g.Pattern.Key() {
			t.Fatalf("pattern %d key %q vs %q", i, w.Pattern.Key(), g.Pattern.Key())
		}
		if w.NumFragments != g.NumFragments || w.NumSupported != g.NumSupported ||
			w.Confidence != g.Confidence {
			t.Errorf("pattern %q counters differ", w.Pattern.Key())
		}
		if len(w.Locals) != len(g.Locals) {
			t.Fatalf("pattern %q: %d vs %d locals", w.Pattern.Key(), len(w.Locals), len(g.Locals))
		}
		for k, wl := range w.Locals {
			gl, ok := g.Locals[k]
			if !ok {
				t.Fatalf("pattern %q lost fragment %v", w.Pattern.Key(), wl.Frag)
			}
			if gl.Support != wl.Support || gl.Model.GoF() != wl.Model.GoF() ||
				gl.Model.Predict(nil) != wl.Model.Predict(nil) {
				t.Errorf("pattern %q fragment %v differs", w.Pattern.Key(), wl.Frag)
			}
		}
	}
}

// TestStoreDeterministicBytes: saving the same set twice must produce
// byte-identical files (sorted local models), so stores diff cleanly.
func TestStoreDeterministicBytes(t *testing.T) {
	patterns := minedForJSON(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	pathA, err := SaveStore(dirA, "pub", patterns)
	if err != nil {
		t.Fatal(err)
	}
	pathB, err := SaveStore(dirB, "pub", patterns)
	if err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("two saves of the same pattern set produced different bytes")
	}
}

// TestStoreOverwriteAndMultipleTables: a re-save replaces the table's
// file, and unrelated tables coexist in one directory.
func TestStoreOverwriteAndMultipleTables(t *testing.T) {
	patterns := minedForJSON(t)
	dir := t.TempDir()
	if _, err := SaveStore(dir, "pub", patterns); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveStore(dir, "pub", patterns); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveStore(dir, "crime", nil); err != nil {
		t.Fatal(err)
	}
	// A stray non-store file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("LoadStore returned %d tables, want 2", len(all))
	}
	if len(all["pub"]) != len(patterns) || len(all["crime"]) != 0 {
		t.Fatalf("tables = pub:%d crime:%d", len(all["pub"]), len(all["crime"]))
	}
}

// TestStoreRejectsBadInput: unusable table names, future versions, and
// files claiming a duplicate table must all error.
func TestStoreRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, ".hidden"} {
		if _, err := SaveStore(dir, bad, nil); err == nil {
			t.Errorf("table name %q accepted", bad)
		}
	}

	future := storeFile{Version: StoreVersion + 1, Table: "pub"}
	data, _ := json.Marshal(future)
	path := filepath.Join(dir, "pub.patterns.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadStoreFile(path); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version load: err = %v", err)
	}
	if _, err := LoadStore(dir); err == nil {
		t.Error("LoadStore accepted a future-version file")
	}

	// Two files claiming one table: detectable only via LoadStore.
	okFile := storeFile{Version: StoreVersion, Table: "pub"}
	data, _ = json.Marshal(okFile)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "alias.patterns.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStore(dir); err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Errorf("duplicate table load: err = %v", err)
	}

	if _, err := LoadStore(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing directory accepted")
	}
}
