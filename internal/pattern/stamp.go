package pattern

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store stamping: the envelope optionally records the source table's
// shape (epoch and row count) at mine time and the mining spec the set
// was produced with, so loaders can detect staleness instead of serving
// silently outdated patterns, and can rebuild an incremental maintainer
// able to fold future appends. Both fields are optional — files written
// by earlier builds (or by SaveStore) load exactly as before, with a
// nil stamp/spec.

// StoreStamp records the source table's shape when the set was mined.
type StoreStamp struct {
	// Epoch is the table's mutation epoch at mine time.
	Epoch uint64 `json:"epoch"`
	// Rows is the table's row count at mine time.
	Rows int `json:"rows"`
}

// StoreSpec records the mining parameters, enough to reconstruct an
// equivalent mining configuration without importing the mining package.
type StoreSpec struct {
	MaxPatternSize int      `json:"max_pattern_size"`
	Attributes     []string `json:"attributes"`
	Theta          float64  `json:"theta"`
	LocalSupport   int      `json:"local_support"`
	Lambda         float64  `json:"lambda"`
	GlobalSupport  int      `json:"global_support"`
	Aggregates     []string `json:"aggregates"`
	Models         []string `json:"models"`
}

// StoreEntry is one loaded store file with its optional stamp and spec.
type StoreEntry struct {
	Table    string
	Patterns []*Mined
	Stamp    *StoreStamp
	Spec     *StoreSpec
}

// stampedStoreFile is the envelope with the optional stamping fields.
// It decodes legacy files too (absent fields stay nil).
type stampedStoreFile struct {
	Version  int         `json:"version"`
	Table    string      `json:"table"`
	Stamp    *StoreStamp `json:"stamp,omitempty"`
	Spec     *StoreSpec  `json:"spec,omitempty"`
	Patterns []jsonMined `json:"patterns"`
}

// SaveStoreStamped writes the pattern set of one table with a source
// stamp and mining spec into dir, atomically like SaveStore.
func SaveStoreStamped(dir, table string, patterns []*Mined, stamp *StoreStamp, spec *StoreSpec) (string, error) {
	name, err := storeFileName(table)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	err = enc.Encode(stampedStoreFile{
		Version: StoreVersion, Table: table,
		Stamp: stamp, Spec: spec,
		Patterns: toJSON(patterns),
	})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// LoadStoreEntry reads one store file, keeping the stamp and spec when
// present. Legacy files written without them load with nil fields.
func LoadStoreEntry(path string) (*StoreEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf stampedStoreFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("pattern: decoding store %s: %w", path, err)
	}
	if sf.Version != StoreVersion {
		return nil, fmt.Errorf("pattern: store %s has version %d, this build reads version %d",
			path, sf.Version, StoreVersion)
	}
	if sf.Table == "" {
		return nil, fmt.Errorf("pattern: store %s has no table name", path)
	}
	pats, err := fromJSON(sf.Patterns)
	if err != nil {
		return nil, fmt.Errorf("pattern: store %s: %w", path, err)
	}
	return &StoreEntry{Table: sf.Table, Patterns: pats, Stamp: sf.Stamp, Spec: sf.Spec}, nil
}

// LoadStoreEntries reads every store file in dir, returning entries in
// sorted table order. Non-store files are ignored; duplicate table
// names are an error, as in LoadStore.
func LoadStoreEntries(dir string) ([]*StoreEntry, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(dirents))
	for _, e := range dirents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), storeExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	seen := make(map[string]bool, len(names))
	out := make([]*StoreEntry, 0, len(names))
	for _, name := range names {
		entry, err := LoadStoreEntry(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if seen[entry.Table] {
			return nil, fmt.Errorf("pattern: store %s duplicates table %q", name, entry.Table)
		}
		seen[entry.Table] = true
		out = append(out, entry)
	}
	return out, nil
}
