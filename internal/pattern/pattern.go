// Package pattern defines aggregate regression patterns (ARPs) — the core
// abstraction of the CAPE paper — and the machinery for deciding whether
// a pattern holds locally on a fragment and globally on a relation
// (Definitions 2–4). A pattern [F] : V ~M~> agg(A) partitions the result
// of grouping on F ∪ V by the partition attributes F and, within each
// fragment, models the aggregate as a function of the predictor
// attributes V with a regression model of type M.
package pattern

import (
	"fmt"
	"strings"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// Pattern is an aggregate regression pattern (F, V, agg, A, M). F and V
// are disjoint non-empty attribute sets; Agg carries both the aggregate
// function and its argument A ("*" for count).
type Pattern struct {
	F     []string
	V     []string
	Agg   engine.AggSpec
	Model regress.ModelType
}

// GroupAttrs returns F ∪ V in F-then-V order (the grouping the pattern's
// retrieval queries use).
func (p Pattern) GroupAttrs() []string {
	out := make([]string, 0, len(p.F)+len(p.V))
	out = append(out, p.F...)
	out = append(out, p.V...)
	return out
}

// Key returns a canonical identity string for the pattern. Attribute
// order within F and within V is normalized.
func (p Pattern) Key() string {
	f := append([]string(nil), p.F...)
	v := append([]string(nil), p.V...)
	sortStrings(f)
	sortStrings(v)
	return strings.Join(f, ",") + "|" + strings.Join(v, ",") + "|" + p.Agg.String() + "|" + p.Model.String()
}

// String renders the paper's notation, e.g.
// "[author]: year ~Const~> count(*)".
func (p Pattern) String() string {
	return fmt.Sprintf("[%s]: %s ~%s~> %s",
		strings.Join(p.F, ","), strings.Join(p.V, ","), p.Model, p.Agg)
}

// Validate checks the structural constraints of Definition 2: F and V
// non-empty and disjoint, and the aggregate argument outside F ∪ V.
func (p Pattern) Validate() error {
	if len(p.F) == 0 || len(p.V) == 0 {
		return fmt.Errorf("pattern: F and V must be non-empty in %s", p)
	}
	seen := map[string]bool{}
	for _, a := range p.F {
		seen[a] = true
	}
	for _, a := range p.V {
		if seen[a] {
			return fmt.Errorf("pattern: attribute %q in both F and V of %s", a, p)
		}
		seen[a] = true
	}
	if !p.Agg.IsStar() && seen[p.Agg.Arg] {
		return fmt.Errorf("pattern: aggregate argument %q inside F ∪ V of %s", p.Agg.Arg, p)
	}
	if p.Agg.IsStar() && p.Agg.Func != engine.Count {
		return fmt.Errorf("pattern: %s requires an argument", p.Agg.Func)
	}
	return nil
}

// Refines reports whether p is a refinement of q per Definition 6:
// same V, same aggregate, and p's partition attributes form a strict or
// non-strict superset of q's.
func (p Pattern) Refines(q Pattern) bool {
	if p.Agg != q.Agg {
		return false
	}
	if !sameStringSet(p.V, q.V) {
		return false
	}
	return subsetOf(q.F, p.F)
}

// Thresholds bundles the four ARP thresholds: local model quality θ,
// local support δ, global confidence λ, and global support Δ.
type Thresholds struct {
	Theta         float64 // θ ∈ [0,1]: minimum goodness-of-fit
	LocalSupport  int     // δ: minimum distinct predictor points per fragment
	Lambda        float64 // λ ∈ [0,1]: minimum |frag_good| / |frag_supp|
	GlobalSupport int     // Δ: minimum |frag_good|
}

// DefaultThresholds mirrors the paper's experimental defaults scaled for
// small data: θ=0.5, δ=3, λ=0.5, Δ=2.
func DefaultThresholds() Thresholds {
	return Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.5, GlobalSupport: 2}
}

// Validate rejects out-of-range thresholds.
func (t Thresholds) Validate() error {
	if t.Theta < 0 || t.Theta > 1 {
		return fmt.Errorf("pattern: θ = %g outside [0,1]", t.Theta)
	}
	if t.Lambda < 0 || t.Lambda > 1 {
		return fmt.Errorf("pattern: λ = %g outside [0,1]", t.Lambda)
	}
	if t.LocalSupport < 1 {
		return fmt.Errorf("pattern: δ = %d must be ≥ 1", t.LocalSupport)
	}
	if t.GlobalSupport < 1 {
		return fmt.Errorf("pattern: Δ = %d must be ≥ 1", t.GlobalSupport)
	}
	return nil
}

// LocalModel is the regression model under which a pattern holds locally
// on one fragment, together with the statistics the explanation stage
// needs.
type LocalModel struct {
	// Frag is the partition-attribute value f (aligned with Pattern.F).
	Frag value.Tuple
	// Model is the fitted regression model g_{P,f}.
	Model regress.Model
	// Support is |Q_{P,f}(R)|: the number of distinct predictor points.
	Support int
	// MaxPosDev and MaxNegDev are the extreme deviations
	// (observed − predicted) within the fragment.
	MaxPosDev, MaxNegDev float64
}

// Mined is a pattern that holds globally, with its local models and the
// aggregate statistics used for pruning during explanation generation.
type Mined struct {
	Pattern Pattern
	// Locals maps frag.Key() to the fragment's local model, for every
	// fragment the pattern holds locally on.
	Locals map[string]*LocalModel
	// NumFragments is |frag(R,P)|, NumSupported is |frag_supp|.
	NumFragments int
	NumSupported int
	// Confidence is |frag_good| / |frag_supp|.
	Confidence float64
	// MaxPosDev / MaxNegDev are deviation extremes across all local
	// models — the dev↑ bound of Section 3.5.
	MaxPosDev, MaxNegDev float64
}

// Local returns the local model for fragment f, if the pattern holds
// locally there.
func (m *Mined) Local(frag value.Tuple) (*LocalModel, bool) {
	lm, ok := m.Locals[frag.Key()]
	return lm, ok
}

// HoldsLocally reports whether the pattern holds locally on fragment f.
func (m *Mined) HoldsLocally(frag value.Tuple) bool {
	_, ok := m.Locals[frag.Key()]
	return ok
}

// GlobalSupport is |frag_good|.
func (m *Mined) GlobalSupport() int { return len(m.Locals) }

// SortedSet returns the distinct attributes of the given slices as one
// sorted slice — the canonical set form shared by the explain relevance
// index and refinement adjacency. The inputs are not modified.
func SortedSet(sets ...[]string) []string {
	n := 0
	for _, s := range sets {
		n += len(s)
	}
	out := make([]string, 0, n)
	for _, s := range sets {
		out = append(out, s...)
	}
	sortStrings(out)
	w := 0
	for i, a := range out {
		if i == 0 || a != out[i-1] {
			out[w] = a
			w++
		}
	}
	return out[:w]
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	return subsetOf(a, b)
}

func subsetOf(a, b []string) bool {
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
