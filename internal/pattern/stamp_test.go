package pattern

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestStampedStoreRoundTrip: SaveStoreStamped → LoadStoreEntry /
// LoadStoreEntries must reproduce the patterns, stamp, and spec.
func TestStampedStoreRoundTrip(t *testing.T) {
	patterns := minedForJSON(t)
	stamp := &StoreStamp{Epoch: 7, Rows: 5000}
	spec := &StoreSpec{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Theta:          0.5, LocalSupport: 3, Lambda: 0.5, GlobalSupport: 2,
		Aggregates: []string{"count", "sum"},
		Models:     []string{"const", "linear"},
	}
	dir := t.TempDir()
	path, err := SaveStoreStamped(dir, "pub", patterns, stamp, spec)
	if err != nil {
		t.Fatal(err)
	}

	entry, err := LoadStoreEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Table != "pub" {
		t.Fatalf("table = %q", entry.Table)
	}
	requireSamePatterns(t, patterns, entry.Patterns)
	if !reflect.DeepEqual(entry.Stamp, stamp) {
		t.Fatalf("stamp = %+v, want %+v", entry.Stamp, stamp)
	}
	if !reflect.DeepEqual(entry.Spec, spec) {
		t.Fatalf("spec = %+v, want %+v", entry.Spec, spec)
	}

	entries, err := LoadStoreEntries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Table != "pub" || entries[0].Stamp == nil {
		t.Fatalf("LoadStoreEntries = %+v", entries)
	}

	// The stamped file still loads through the legacy reader (unknown
	// fields are ignored), so older builds can read new stores.
	table, back, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if table != "pub" {
		t.Fatalf("legacy reader table = %q", table)
	}
	requireSamePatterns(t, patterns, back)
}

// TestStampedStoreLoadsLegacyFiles: a store written by SaveStore (no
// stamp, no spec) loads through the stamped reader with nil fields.
func TestStampedStoreLoadsLegacyFiles(t *testing.T) {
	patterns := minedForJSON(t)
	dir := t.TempDir()
	if _, err := SaveStore(dir, "pub", patterns); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadStoreEntries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries", len(entries))
	}
	e := entries[0]
	if e.Stamp != nil || e.Spec != nil {
		t.Fatalf("legacy store produced stamp %+v spec %+v", e.Stamp, e.Spec)
	}
	requireSamePatterns(t, patterns, e.Patterns)
}

// TestStampedStoreNilStamp: saving with nil stamp/spec omits the fields
// entirely — byte-compatible with the legacy writer.
func TestStampedStoreNilStamp(t *testing.T) {
	patterns := minedForJSON(t)
	dir := t.TempDir()
	if _, err := SaveStoreStamped(dir, "a", patterns, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveStore(dir, "b", patterns); err != nil {
		t.Fatal(err)
	}
	read := func(name string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a := strings.Replace(read("a.patterns.json"), `"table": "a"`, `"table": "b"`, 1)
	if b := read("b.patterns.json"); a != b {
		t.Fatalf("nil-stamped file differs from legacy writer:\n%s\nvs\n%s", a, b)
	}
}
