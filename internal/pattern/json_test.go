package pattern

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

func minedForJSON(t *testing.T) []*Mined {
	t.Helper()
	tab := figure1Table(t)
	th := Thresholds{Theta: 0.2, LocalSupport: 2, Lambda: 0.5, GlobalSupport: 2}
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	m, err := Fit(p, tab, th, nil)
	if err != nil || m == nil {
		t.Fatalf("fit: %v %v", m, err)
	}
	return []*Mined{m}
}

func TestJSONRoundTrip(t *testing.T) {
	patterns := minedForJSON(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, patterns); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("patterns = %d", len(back))
	}
	orig, got := patterns[0], back[0]
	if got.Pattern.Key() != orig.Pattern.Key() {
		t.Errorf("pattern key %q vs %q", got.Pattern.Key(), orig.Pattern.Key())
	}
	if got.NumFragments != orig.NumFragments || got.NumSupported != orig.NumSupported ||
		got.Confidence != orig.Confidence {
		t.Errorf("stats differ: %+v vs %+v", got, orig)
	}
	if len(got.Locals) != len(orig.Locals) {
		t.Fatalf("locals = %d vs %d", len(got.Locals), len(orig.Locals))
	}
	for k, lm := range orig.Locals {
		gl, ok := got.Locals[k]
		if !ok {
			t.Fatalf("missing fragment %v", lm.Frag)
		}
		if gl.Model.Predict(nil) != lm.Model.Predict(nil) {
			t.Errorf("prediction differs: %g vs %g", gl.Model.Predict(nil), lm.Model.Predict(nil))
		}
		if gl.Model.GoF() != lm.Model.GoF() || gl.Support != lm.Support {
			t.Errorf("local stats differ for %v", lm.Frag)
		}
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	patterns := minedForJSON(t)
	path := filepath.Join(t.TempDir(), "patterns.json")
	if err := WriteJSONFile(path, patterns); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(patterns) {
		t.Errorf("file round trip lost patterns")
	}
	if _, err := ReadJSONFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`[{"f":["a"],"v":["b"],"agg":"median","model":"Const"}]`,
		`[{"f":["a"],"v":["b"],"agg":"count","model":"Quadratic"}]`,
		`[{"f":[],"v":["b"],"agg":"count","model":"Const"}]`, // invalid pattern
		`[{"f":["a"],"v":["b"],"agg":"count","model":"Const",
		   "locals":[{"frag":[{"k":"string","s":"x"}],"params":[],"gof":0.5}]}]`, // bad params
		`[{"f":["a"],"v":["b"],"agg":"count","model":"Const",
		   "locals":[{"frag":[{"k":"string","s":"x"}],"params":[1],"gof":7}]}]`, // bad gof
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestLinModelJSONRoundTrip(t *testing.T) {
	model, err := regress.Fit(regress.Lin, [][]float64{{0}, {1}, {2}}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	m := &Mined{
		Pattern: Pattern{F: []string{"a"}, V: []string{"y"},
			Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Lin},
		Locals: map[string]*LocalModel{},
	}
	frag := value.Tuple{value.NewString("f1")}
	m.Locals[frag.Key()] = &LocalModel{Frag: frag, Model: model, Support: 3}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Mined{m}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lm, ok := back[0].Local(frag)
	if !ok {
		t.Fatal("fragment lost")
	}
	if got := lm.Model.Predict([]float64{10}); got != model.Predict([]float64{10}) {
		t.Errorf("Lin prediction differs after round trip: %g vs %g", got, model.Predict([]float64{10}))
	}
}
