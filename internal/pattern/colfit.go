package pattern

import (
	"fmt"
	"time"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// SharedFitter evaluates pattern candidates over one grouped table,
// columnar: aggregate and predictor observations come straight from the
// engine's columnar view (flat float64 buffers plus numeric masks, built
// once per table and shared with every other operator), and each Fit
// call scans fragment runs of a sorted row permutation as subslices with
// reusable scratch buffers. Nothing is re-decoded or re-boxed into
// value.Tuple rows, no per-fragment observation slices are allocated,
// and thresholds are validated once — this is the offline-mining hot
// path behind ARPMine, ShareGrp, and CubeMine.
//
// A SharedFitter is not safe for concurrent use; miners construct one
// per grouped table inside their per-attribute-set workers. (The
// underlying engine.Columnar is itself safe to share.)
type SharedFitter struct {
	grouped *engine.Table
	cols    *engine.Columnar
	aggs    []engine.AggSpec
	models  []regress.ModelType
	th      Thresholds
	hasLin  bool

	aggVal [][]float64 // [agg][row]: aggregate observation (engine buffer)
	aggOK  [][]bool    // [agg][row]: observation numeric? (engine buffer)

	// Scratch reused across fragments and Fit calls.
	ys       []float64
	xs       []float64
	keyBuf   []byte
	stats    regress.ConstStats
	lin      regress.LinScratch
	cands    []candState
	fragEnds []int32
	runCurs  []engine.RunCursor
}

// candState tracks one (aggregate, model) candidate across the fragment
// scan of a single Fit call.
type candState struct {
	p       Pattern
	mined   *Mined // allocated on the first locally-holding fragment
	numSupp int
	numFrag int
}

// NewSharedFitter validates the thresholds once and binds the aggregate
// columns of grouped to the engine's flat columnar buffers (built on
// first use, cached on the table). grouped must contain one column per
// aggregate in aggs, named engine.AggSpec.String().
func NewSharedFitter(grouped *engine.Table, aggs []engine.AggSpec,
	models []regress.ModelType, th Thresholds) (*SharedFitter, error) {

	if err := th.Validate(); err != nil {
		return nil, err
	}
	sch := grouped.Schema()
	sf := &SharedFitter{
		grouped: grouped,
		cols:    grouped.Columns(),
		aggs:    aggs,
		models:  models,
		th:      th,
		aggVal:  make([][]float64, len(aggs)),
		aggOK:   make([][]bool, len(aggs)),
	}
	for _, m := range models {
		if m == regress.Lin {
			sf.hasLin = true
		}
	}
	for i, a := range aggs {
		ci := sch.Index(a.String())
		if ci < 0 {
			return nil, fmt.Errorf("pattern: sorted input missing aggregate column %q", a.String())
		}
		col := sf.cols.FlatCol(ci)
		sf.aggVal[i] = col.F64
		sf.aggOK[i] = col.Num
	}
	return sf, nil
}

// predictorCol returns the engine's flat view of one predictor column
// (F64 is 0 and Num false exactly where AsFloat would decline, so the
// semantics match the previous per-fitter decode).
func (sf *SharedFitter) predictorCol(ci int) ([]float64, []bool) {
	col := sf.cols.FlatCol(ci)
	return col.F64, col.Num
}

// Fit evaluates, in a single scan, every (aggregate, model) candidate
// sharing the partition attributes f and predictor attributes v. perm is
// a permutation of the grouped table's rows sorted by f then v (any
// attribute order within each set); nil means the table itself is
// already sorted. codes, when non-nil, supplies dense sort codes for
// fragment-boundary detection; otherwise boundaries fall back to boxed
// value comparison. The returned slice holds one *Mined per candidate
// that holds globally. This implements the paper's "one query for all
// patterns sharing F and V" optimization plus Algorithm 6's block scan.
func (sf *SharedFitter) Fit(f, v []string, perm []int32, codes *engine.SortCodes, tm *Timers) ([]*Mined, error) {
	// Canonicalize attribute order so the same (F, V) pair produces
	// identical pattern keys and fragment keys regardless of which sort
	// order or enumeration order discovered it. Fragment blocks stay
	// consecutive under any permutation of F.
	f = SortedCopy(f)
	v = SortedCopy(v)
	sch := sf.grouped.Schema()
	fIdx, err := sch.Indices(f)
	if err != nil {
		return nil, err
	}
	vIdx, err := sch.Indices(v)
	if err != nil {
		return nil, err
	}

	// Fragment boundaries compare dense int codes when available.
	var fCodes [][]int32
	if codes != nil {
		fCodes = make([][]int32, 0, len(f))
		for _, a := range f {
			c := codes.Codes(a)
			if c == nil {
				fCodes = nil
				break
			}
			fCodes = append(fCodes, c)
		}
	}

	// Predictor columns, decoded once per grouped table.
	vVal := make([][]float64, len(vIdx))
	vOK := make([][]bool, len(vIdx))
	for i, ci := range vIdx {
		vVal[i], vOK[i] = sf.predictorCol(ci)
	}

	if cap(sf.cands) < len(sf.aggs)*len(sf.models) {
		sf.cands = make([]candState, len(sf.aggs)*len(sf.models))
	}
	cands := sf.cands[:len(sf.aggs)*len(sf.models)]
	for ai, a := range sf.aggs {
		for mi, m := range sf.models {
			p := Pattern{F: f, V: v, Agg: a, Model: m}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			cands[ai*len(sf.models)+mi] = candState{p: p}
		}
	}

	n := sf.grouped.NumRows()
	start := int32(0)
	for _, end := range sf.fragmentEnds(fIdx, fCodes, perm, n) {
		if err := sf.flushFragment(cands, fIdx, vVal, vOK, perm, int(start), int(end), tm); err != nil {
			return nil, err
		}
		start = end
	}

	// Decide global holding per candidate (Definition 4).
	var out []*Mined
	for i := range cands {
		cs := &cands[i]
		if cs.mined == nil || cs.numSupp == 0 {
			continue
		}
		good := len(cs.mined.Locals)
		if good < sf.th.GlobalSupport {
			continue
		}
		conf := float64(good) / float64(cs.numSupp)
		if conf < sf.th.Lambda {
			continue
		}
		cs.mined.NumFragments = cs.numFrag
		cs.mined.NumSupported = cs.numSupp
		cs.mined.Confidence = conf
		out = append(out, cs.mined)
	}
	return out, nil
}

// fragmentEnds computes the exclusive end row of every fragment of the
// scan, in order, into a reusable buffer. Tiers, fastest first: when the
// table is already in fragment order (perm == nil) and the partition
// columns carry current compressed views, fragment boundaries come from
// intersecting the columns' equal-code runs — O(runs), no per-row code
// loads over RLE columns; otherwise a tight loop over the dense sort
// codes; otherwise boxed value comparison (the reference).
func (sf *SharedFitter) fragmentEnds(fIdx []int, fCodes [][]int32, perm []int32, n int) []int32 {
	ends := sf.fragEnds[:0]
	switch {
	case n == 0:
	case len(fIdx) == 0:
		ends = append(ends, int32(n))
	case perm == nil && sf.appendCompressedRuns(fIdx, n, &ends):
	case fCodes != nil && perm != nil:
		for r := 1; r < n; r++ {
			pa, pb := perm[r-1], perm[r]
			for _, c := range fCodes {
				if c[pa] != c[pb] {
					ends = append(ends, int32(r))
					break
				}
			}
		}
		ends = append(ends, int32(n))
	case fCodes != nil:
		for r := 1; r < n; r++ {
			for _, c := range fCodes {
				if c[r-1] != c[r] {
					ends = append(ends, int32(r))
					break
				}
			}
		}
		ends = append(ends, int32(n))
	default:
		rows := sf.grouped.Rows()
		prev := rows[0]
		if perm != nil {
			prev = rows[perm[0]]
		}
		for r := 1; r < n; r++ {
			cur := rows[r]
			if perm != nil {
				cur = rows[perm[r]]
			}
			for _, ci := range fIdx {
				if !value.Equal(prev[ci], cur[ci]) {
					ends = append(ends, int32(r))
					break
				}
			}
			prev = cur
		}
		ends = append(ends, int32(n))
	}
	sf.fragEnds = ends
	return ends
}

// appendCompressedRuns appends fragment ends by intersecting the
// partition columns' compressed runs, reporting false when any column
// lacks a current compressed view (built via Table.CompressColumns and
// covering all n rows).
func (sf *SharedFitter) appendCompressedRuns(fIdx []int, n int, ends *[]int32) bool {
	if cap(sf.runCurs) < len(fIdx) {
		sf.runCurs = make([]engine.RunCursor, len(fIdx))
	}
	curs := sf.runCurs[:len(fIdx)]
	for i, ci := range fIdx {
		cc := sf.cols.Compressed(ci)
		if cc == nil || cc.NumRows() != n {
			return false
		}
		curs[i].Init(cc)
	}
	for pos := int32(0); pos < int32(n); {
		end := int32(n)
		for i := range curs {
			if _, e := curs[i].Seek(pos); e < end {
				end = e
			}
		}
		*ends = append(*ends, end)
		pos = end
	}
	return true
}

// flushFragment evaluates all candidates on the fragment perm[lo:hi].
func (sf *SharedFitter) flushFragment(cands []candState, fIdx []int,
	vVal [][]float64, vOK [][]bool, perm []int32, lo, hi int, tm *Timers) error {

	n := hi - lo
	d := len(vVal)
	rowAt := func(r int) int32 {
		if perm != nil {
			return perm[r]
		}
		return int32(r)
	}

	// Gather the fragment's predictor matrix once (flat, stride d) when
	// any Lin candidate will need it.
	numericX := true
	xs := sf.xs[:0]
	if sf.hasLin {
	gather:
		for r := lo; r < hi; r++ {
			ri := rowAt(r)
			for i := 0; i < d; i++ {
				if !vOK[i][ri] {
					numericX = false
					break gather
				}
				xs = append(xs, vVal[i][ri])
			}
		}
		sf.xs = xs
	}

	// Fragment identity, materialized lazily on the first local hold.
	var frag value.Tuple
	var fragKey string

	for ai := range sf.aggs {
		vals, oks := sf.aggVal[ai], sf.aggOK[ai]
		// One pass per aggregate: numeric check, sufficient statistics
		// for Const, and the observation vector for Lin.
		numericY := true
		sf.stats.Reset()
		ys := sf.ys[:0]
		for r := lo; r < hi; r++ {
			ri := rowAt(r)
			if !oks[ri] {
				numericY = false
				break
			}
			y := vals[ri]
			sf.stats.Add(y)
			ys = append(ys, y)
		}
		sf.ys = ys

		for mi := range sf.models {
			cs := &cands[ai*len(sf.models)+mi]
			cs.numFrag++
			if !numericY || n < sf.th.LocalSupport {
				continue // insufficient local support
			}
			cs.numSupp++
			isLin := cs.p.Model == regress.Lin
			if isLin && !numericX {
				continue // Lin needs numeric predictors
			}
			var t0 time.Time
			if tm != nil {
				t0 = time.Now()
			}
			// Fit without materializing a Model: most fragments fail the
			// GoF threshold, and the rejects must not allocate.
			var gof, cmean float64
			var ferr error
			if isLin {
				gof, ferr = regress.FitLinInto(xs[:n*d], d, ys, &sf.lin)
			} else {
				cmean, gof, ferr = sf.stats.FitParams()
			}
			if tm != nil {
				tm.Regression += time.Since(t0)
			}
			if ferr != nil {
				continue // singular fit etc.: pattern does not hold here
			}
			if gof < sf.th.Theta {
				continue
			}
			var model regress.Model
			if isLin {
				model = sf.lin.Model(gof)
			} else {
				model = regress.NewConst(cmean, gof)
			}
			if frag == nil {
				rows := sf.grouped.Rows()
				first := rows[rowAt(lo)]
				frag = make(value.Tuple, len(fIdx))
				for i, ci := range fIdx {
					frag[i] = first[ci]
				}
				sf.keyBuf = frag.AppendKey(sf.keyBuf[:0])
				fragKey = string(sf.keyBuf)
			}
			lm := &LocalModel{Frag: frag, Model: model, Support: n}
			if isLin {
				for i, y := range ys {
					dev := y - model.Predict(xs[i*d:(i+1)*d])
					if dev > lm.MaxPosDev {
						lm.MaxPosDev = dev
					}
					if dev < lm.MaxNegDev {
						lm.MaxNegDev = dev
					}
				}
			} else {
				// For a Const model, max(y − mean) = max(y) − mean and
				// min(y − mean) = min(y) − mean exactly (subtraction is
				// monotone), so the extremes come from the statistics.
				mean := model.Predict(nil)
				if dev := sf.stats.Max - mean; dev > 0 {
					lm.MaxPosDev = dev
				}
				if dev := sf.stats.Min - mean; dev < 0 {
					lm.MaxNegDev = dev
				}
			}
			if cs.mined == nil {
				cs.mined = &Mined{
					Pattern: cs.p,
					Locals:  make(map[string]*LocalModel),
				}
			}
			cs.mined.Locals[fragKey] = lm
			if lm.MaxPosDev > cs.mined.MaxPosDev {
				cs.mined.MaxPosDev = lm.MaxPosDev
			}
			if lm.MaxNegDev < cs.mined.MaxNegDev {
				cs.mined.MaxNegDev = lm.MaxNegDev
			}
		}
	}
	return nil
}
