package pattern

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A pattern store persists the offline mining phase's output as one
// versioned JSON file per table in a directory, so the online phase
// (the server's -patterns-dir, or cape explain -patterns) survives
// restarts without re-mining. The format is the WriteJSON wire format
// wrapped in a versioned envelope; serialization is deterministic
// (sorted local models), so committing a store to version control
// yields stable diffs.

// StoreVersion is the current pattern-store file format version.
// Readers reject files written by a newer, unknown version instead of
// silently misreading them.
const StoreVersion = 1

// storeExt is the filename suffix of a store file: <table>.patterns.json.
const storeExt = ".patterns.json"

// storeFile is the on-disk envelope.
type storeFile struct {
	Version  int         `json:"version"`
	Table    string      `json:"table"`
	Patterns []jsonMined `json:"patterns"`
}

// storeFileName maps a table name to its file inside a store directory,
// rejecting names that would escape the directory or hide the file.
func storeFileName(table string) (string, error) {
	if table == "" || strings.HasPrefix(table, ".") ||
		strings.ContainsAny(table, `/\`) || table != filepath.Base(table) {
		return "", fmt.Errorf("pattern: table name %q not usable as a store filename", table)
	}
	return table + storeExt, nil
}

// SaveStore writes the mined pattern set of one table into dir
// (creating it if needed) and returns the file path. An existing store
// file for the same table is replaced atomically (write to a temp file,
// then rename), so a concurrent reader never observes a partial file.
func SaveStore(dir, table string, patterns []*Mined) (string, error) {
	name, err := storeFileName(table)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	err = enc.Encode(storeFile{Version: StoreVersion, Table: table, Patterns: toJSON(patterns)})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// LoadStoreFile reads one store file, returning the table name it was
// mined from and the patterns.
func LoadStoreFile(path string) (string, []*Mined, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var sf storeFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return "", nil, fmt.Errorf("pattern: decoding store %s: %w", path, err)
	}
	if sf.Version != StoreVersion {
		return "", nil, fmt.Errorf("pattern: store %s has version %d, this build reads version %d",
			path, sf.Version, StoreVersion)
	}
	if sf.Table == "" {
		return "", nil, fmt.Errorf("pattern: store %s has no table name", path)
	}
	pats, err := fromJSON(sf.Patterns)
	if err != nil {
		return "", nil, fmt.Errorf("pattern: store %s: %w", path, err)
	}
	return sf.Table, pats, nil
}

// LoadStore reads every store file in dir, returning table name →
// patterns in sorted table order (the iteration order of the returned
// map is Go's usual random order; sort the keys for determinism).
// Non-store files in the directory are ignored; a missing directory is
// an error.
func LoadStore(dir string) (map[string][]*Mined, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*Mined)
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), storeExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		table, pats, err := LoadStoreFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if _, dup := out[table]; dup {
			return nil, fmt.Errorf("pattern: store %s duplicates table %q", name, table)
		}
		out[table] = pats
	}
	return out, nil
}
