package pattern

import (
	"testing"

	"cape/internal/engine"
	"cape/internal/regress"
	"cape/internal/value"
)

// figure1Table reproduces the Pub instance from Figure 1 of the paper.
func figure1Table(t *testing.T) *engine.Table {
	t.Helper()
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "pubid", Kind: value.String},
		{Name: "year", Kind: value.Int},
		{Name: "venue", Kind: value.String},
	})
	rows := []struct {
		a, p  string
		y     int64
		venue string
	}{
		{"AX", "P1", 2004, "SIGKDD"}, {"AX", "P2", 2004, "SIGKDD"},
		{"AX", "P3", 2005, "SIGKDD"}, {"AX", "P4", 2005, "SIGKDD"},
		{"AX", "P5", 2005, "ICDE"},
		{"AY", "P2", 2004, "SIGKDD"}, {"AY", "P6", 2004, "ICDE"},
		{"AY", "P7", 2004, "ICDM"}, {"AY", "P8", 2005, "ICDE"},
		{"AZ", "P9", 2004, "SIGMOD"},
	}
	for _, r := range rows {
		tab.MustAppend(value.Tuple{
			value.NewString(r.a), value.NewString(r.p),
			value.NewInt(r.y), value.NewString(r.venue),
		})
	}
	return tab
}

// TestFitFigure1 reproduces the paper's Example 2: pattern
// [author]: year ~Const~> count(*) with δ=2, θ=0.2, λ=0.5, Δ=2 holds
// globally; AX's model predicts 2.5 papers/year, AY's 2; AZ lacks
// support.
func TestFitFigure1(t *testing.T) {
	tab := figure1Table(t)
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	th := Thresholds{Theta: 0.2, LocalSupport: 2, Lambda: 0.5, GlobalSupport: 2}
	m, err := Fit(p, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("pattern should hold globally")
	}
	if m.NumFragments != 3 {
		t.Errorf("|frag| = %d, want 3", m.NumFragments)
	}
	if m.NumSupported != 2 {
		t.Errorf("|frag_supp| = %d, want 2 (AZ below δ)", m.NumSupported)
	}
	if m.GlobalSupport() != 2 {
		t.Errorf("|frag_good| = %d, want 2", m.GlobalSupport())
	}
	if m.Confidence != 1 {
		t.Errorf("confidence = %g, want 1", m.Confidence)
	}
	ax, ok := m.Local(value.Tuple{value.NewString("AX")})
	if !ok {
		t.Fatal("AX should hold locally")
	}
	if got := ax.Model.Predict(nil); got != 2.5 {
		t.Errorf("g(AX) predicts %g, want 2.5", got)
	}
	ay, ok := m.Local(value.Tuple{value.NewString("AY")})
	if !ok {
		t.Fatal("AY should hold locally")
	}
	if got := ay.Model.Predict(nil); got != 2 {
		t.Errorf("g(AY) predicts %g, want 2", got)
	}
	if m.HoldsLocally(value.Tuple{value.NewString("AZ")}) {
		t.Error("AZ must not hold locally (support 1 < δ)")
	}
}

func TestFitGlobalSupportFails(t *testing.T) {
	tab := figure1Table(t)
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	th := Thresholds{Theta: 0.2, LocalSupport: 2, Lambda: 0.5, GlobalSupport: 3}
	m, err := Fit(p, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Error("Δ=3 exceeds the 2 good fragments: pattern must not hold")
	}
}

func TestFitConfidenceFails(t *testing.T) {
	// Make AY's counts wildly scattered so its Const fit has low GoF,
	// pushing confidence to 1/2 < λ = 0.9.
	tab := figure1Table(t)
	for i := 0; i < 40; i++ {
		tab.MustAppend(value.Tuple{
			value.NewString("AY"), value.NewString("PX"),
			value.NewInt(2006), value.NewString("ICDE"),
		})
	}
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	th := Thresholds{Theta: 0.2, LocalSupport: 2, Lambda: 0.9, GlobalSupport: 1}
	m, err := Fit(p, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Errorf("confidence %g with λ=0.9 should fail", m.Confidence)
	}
	// Same data, lenient λ: holds with confidence 0.5.
	th.Lambda = 0.5
	m, err = Fit(p, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("λ=0.5 should pass with confidence 1/2")
	}
	if m.Confidence != 0.5 {
		t.Errorf("confidence = %g, want 0.5", m.Confidence)
	}
}

func TestFitLinearPattern(t *testing.T) {
	// Author pubs grow linearly: 1, 2, 3, 4 per year.
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	for _, a := range []string{"A1", "A2", "A3"} {
		for y := int64(0); y < 4; y++ {
			for k := int64(0); k <= y; k++ {
				tab.MustAppend(value.Tuple{value.NewString(a), value.NewInt(2000 + y)})
			}
		}
	}
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Lin}
	th := Thresholds{Theta: 0.9, LocalSupport: 3, Lambda: 0.5, GlobalSupport: 2}
	m, err := Fit(p, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("exact linear trend should hold")
	}
	if m.GlobalSupport() != 3 {
		t.Errorf("good fragments = %d, want 3", m.GlobalSupport())
	}
	lm, _ := m.Local(value.Tuple{value.NewString("A1")})
	if got := lm.Model.Predict([]float64{2005}); got < 5.9 || got > 6.1 {
		t.Errorf("extrapolated prediction = %g, want ≈ 6", got)
	}
}

func TestFitLinNonNumericPredictor(t *testing.T) {
	// venue (string) as predictor: Lin cannot hold, Const can.
	tab := figure1Table(t)
	lin := Pattern{F: []string{"author"}, V: []string{"venue"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Lin}
	th := Thresholds{Theta: 0.0, LocalSupport: 2, Lambda: 0.1, GlobalSupport: 1}
	m, err := Fit(lin, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Error("Lin over a string predictor must not hold")
	}
	cst := lin
	cst.Model = regress.Const
	m, err = Fit(cst, tab, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Error("Const over a string predictor should be fittable")
	}
}

func TestFitSharedMultipleAggregates(t *testing.T) {
	tab := figure1Table(t)
	f, v := []string{"author"}, []string{"year"}
	aggs := []engine.AggSpec{{Func: engine.Count}, {Func: engine.Min, Arg: "venue"}}
	grouped, err := tab.GroupBy(append(f, v...), aggs)
	if err != nil {
		t.Fatal(err)
	}
	if err := grouped.SortBy(append(f, v...)); err != nil {
		t.Fatal(err)
	}
	th := Thresholds{Theta: 0.1, LocalSupport: 2, Lambda: 0.5, GlobalSupport: 1}
	res, err := FitShared(f, v, aggs, []regress.ModelType{regress.Const, regress.Lin}, grouped, th, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res {
		// min(venue) yields strings: no regression possible.
		if m.Pattern.Agg.Func == engine.Min {
			t.Errorf("string-valued aggregate pattern %s should not hold", m.Pattern)
		}
	}
	// At least the Const count pattern should be present.
	found := false
	for _, m := range res {
		if m.Pattern.Agg.Func == engine.Count && m.Pattern.Model == regress.Const {
			found = true
		}
	}
	if !found {
		t.Error("Const count(*) pattern missing from FitShared result")
	}
}

func TestFitSharedMissingAggColumn(t *testing.T) {
	tab := figure1Table(t)
	grouped, _ := tab.GroupBy([]string{"author", "year"}, []engine.AggSpec{{Func: engine.Count}})
	_, err := FitShared([]string{"author"}, []string{"year"},
		[]engine.AggSpec{{Func: engine.Sum, Arg: "zz"}},
		[]regress.ModelType{regress.Const}, grouped, DefaultThresholds(), nil)
	if err == nil {
		t.Error("missing aggregate column should error")
	}
}

func TestFitSharedBadThresholds(t *testing.T) {
	tab := figure1Table(t)
	grouped, _ := tab.GroupBy([]string{"author", "year"}, []engine.AggSpec{{Func: engine.Count}})
	_, err := FitShared([]string{"author"}, []string{"year"},
		[]engine.AggSpec{{Func: engine.Count}},
		[]regress.ModelType{regress.Const}, grouped,
		Thresholds{Theta: 2, LocalSupport: 1, Lambda: 0.5, GlobalSupport: 1}, nil)
	if err == nil {
		t.Error("invalid thresholds should error")
	}
}

func TestFitDeviationExtremes(t *testing.T) {
	// AX counts: 2004→2, 2005→3; mean 2.5 ⟹ devs −0.5, +0.5.
	tab := figure1Table(t)
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	th := Thresholds{Theta: 0.2, LocalSupport: 2, Lambda: 0.5, GlobalSupport: 1}
	m, err := Fit(p, tab, th, nil)
	if err != nil || m == nil {
		t.Fatal(err)
	}
	ax, _ := m.Local(value.Tuple{value.NewString("AX")})
	if ax.MaxPosDev != 0.5 || ax.MaxNegDev != -0.5 {
		t.Errorf("AX dev extremes = %g / %g, want +0.5 / −0.5", ax.MaxPosDev, ax.MaxNegDev)
	}
	if m.MaxPosDev < 0.5 {
		t.Errorf("global MaxPosDev = %g, want ≥ 0.5", m.MaxPosDev)
	}
	if m.MaxNegDev > -0.5 {
		t.Errorf("global MaxNegDev = %g, want ≤ −0.5", m.MaxNegDev)
	}
}

func TestFitTimersAccumulate(t *testing.T) {
	tab := figure1Table(t)
	p := Pattern{F: []string{"author"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	var tm Timers
	if _, err := Fit(p, tab, Thresholds{Theta: 0.1, LocalSupport: 2, Lambda: 0.5, GlobalSupport: 1}, &tm); err != nil {
		t.Fatal(err)
	}
	if tm.Total() <= 0 {
		t.Error("timers should accumulate some duration")
	}
	var sum Timers
	sum.Add(tm)
	sum.Add(tm)
	if sum.Total() != 2*tm.Total() {
		t.Error("Timers.Add arithmetic wrong")
	}
}

func TestEncodePredictors(t *testing.T) {
	if _, ok := EncodePredictors(value.Tuple{value.NewString("x")}); ok {
		t.Error("string predictor should not encode")
	}
	if _, ok := EncodePredictors(value.Tuple{value.NewNull()}); ok {
		t.Error("null predictor should not encode")
	}
	enc, ok := EncodePredictors(value.Tuple{value.NewInt(3), value.NewFloat(1.5)})
	if !ok || enc[0] != 3 || enc[1] != 1.5 {
		t.Errorf("EncodePredictors = %v, %v", enc, ok)
	}
}

func TestFitInvalidPattern(t *testing.T) {
	tab := figure1Table(t)
	bad := Pattern{F: nil, V: []string{"year"}, Agg: engine.AggSpec{Func: engine.Count}}
	if _, err := Fit(bad, tab, DefaultThresholds(), nil); err == nil {
		t.Error("invalid pattern should error")
	}
}
