package pattern

import (
	"testing"

	"cape/internal/engine"
	"cape/internal/regress"
)

func countStar() engine.AggSpec { return engine.AggSpec{Func: engine.Count} }

func TestPatternString(t *testing.T) {
	p := Pattern{F: []string{"author"}, V: []string{"year"}, Agg: countStar(), Model: regress.Const}
	if got := p.String(); got != "[author]: year ~Const~> count(*)" {
		t.Errorf("String() = %q", got)
	}
}

func TestPatternKeyCanonical(t *testing.T) {
	a := Pattern{F: []string{"x", "y"}, V: []string{"z"}, Agg: countStar(), Model: regress.Const}
	b := Pattern{F: []string{"y", "x"}, V: []string{"z"}, Agg: countStar(), Model: regress.Const}
	if a.Key() != b.Key() {
		t.Error("Key should normalize attribute order within F")
	}
	c := Pattern{F: []string{"x"}, V: []string{"y", "z"}, Agg: countStar(), Model: regress.Const}
	if a.Key() == c.Key() {
		t.Error("different F/V split must produce different keys")
	}
	d := a
	d.Model = regress.Lin
	if a.Key() == d.Key() {
		t.Error("model type must be part of the key")
	}
}

func TestPatternValidate(t *testing.T) {
	good := Pattern{F: []string{"a"}, V: []string{"b"}, Agg: countStar(), Model: regress.Const}
	if err := good.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	cases := []Pattern{
		{F: nil, V: []string{"b"}, Agg: countStar()},                                          // empty F
		{F: []string{"a"}, V: nil, Agg: countStar()},                                          // empty V
		{F: []string{"a"}, V: []string{"a"}, Agg: countStar()},                                // overlap
		{F: []string{"a"}, V: []string{"b"}, Agg: engine.AggSpec{Func: engine.Sum, Arg: "a"}}, // A ∈ F
		{F: []string{"a"}, V: []string{"b"}, Agg: engine.AggSpec{Func: engine.Sum}},           // sum(*)
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid pattern accepted: %s", i, p)
		}
	}
}

func TestRefines(t *testing.T) {
	base := Pattern{F: []string{"author"}, V: []string{"year"}, Agg: countStar(), Model: regress.Const}
	refined := Pattern{F: []string{"author", "venue"}, V: []string{"year"}, Agg: countStar(), Model: regress.Lin}
	if !refined.Refines(base) {
		t.Error("author,venue should refine author (model may differ)")
	}
	if !base.Refines(base) {
		t.Error("a pattern refines itself (F' ⊇ F)")
	}
	if base.Refines(refined) {
		t.Error("coarser pattern must not refine finer one")
	}
	otherV := Pattern{F: []string{"author", "venue"}, V: []string{"month"}, Agg: countStar(), Model: regress.Const}
	if otherV.Refines(base) {
		t.Error("different V must not refine")
	}
	otherAgg := Pattern{F: []string{"author", "venue"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Sum, Arg: "cites"}, Model: regress.Const}
	if otherAgg.Refines(base) {
		t.Error("different aggregate must not refine")
	}
}

func TestGroupAttrs(t *testing.T) {
	p := Pattern{F: []string{"a", "b"}, V: []string{"c"}, Agg: countStar(), Model: regress.Const}
	got := p.GroupAttrs()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("GroupAttrs = %v", got)
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Thresholds{
		{Theta: -0.1, LocalSupport: 1, Lambda: 0.5, GlobalSupport: 1},
		{Theta: 1.1, LocalSupport: 1, Lambda: 0.5, GlobalSupport: 1},
		{Theta: 0.5, LocalSupport: 0, Lambda: 0.5, GlobalSupport: 1},
		{Theta: 0.5, LocalSupport: 1, Lambda: -1, GlobalSupport: 1},
		{Theta: 0.5, LocalSupport: 1, Lambda: 2, GlobalSupport: 1},
		{Theta: 0.5, LocalSupport: 1, Lambda: 0.5, GlobalSupport: 0},
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("case %d: invalid thresholds accepted: %+v", i, th)
		}
	}
}
