package dataset

import (
	"fmt"
	"math/rand"

	"cape/internal/engine"
	"cape/internal/value"
)

// DBLPConfig parameterizes the synthetic bibliography generator. The
// output schema matches the paper's Pub(author, pubid, year, venue).
type DBLPConfig struct {
	// Rows is the approximate number of publication rows to produce.
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// NumVenues is the size of the venue universe (default 12).
	NumVenues int
	// StartYear/EndYear bound the publication years (default 2000–2015).
	StartYear, EndYear int
	// AvgPubsPerAuthorYear controls per-venue productivity (default 3).
	AvgPubsPerAuthorYear float64
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.Rows <= 0 {
		c.Rows = 10000
	}
	if c.NumVenues <= 0 {
		c.NumVenues = 12
	}
	if c.StartYear == 0 {
		c.StartYear = 2000
	}
	if c.EndYear == 0 {
		c.EndYear = 2015
	}
	if c.EndYear < c.StartYear {
		c.EndYear = c.StartYear
	}
	if c.AvgPubsPerAuthorYear <= 0 {
		c.AvgPubsPerAuthorYear = 3
	}
	return c
}

// dblpVenueNames supplies plausible venue labels; extras are synthesized.
var dblpVenueNames = []string{
	"SIGKDD", "SIGMOD", "VLDB", "ICDE", "ICDM", "TKDE", "PODS", "CIKM",
	"EDBT", "WSDM", "WWW", "NIPS", "ICML", "AAAI", "IJCAI", "TODS",
}

// DBLPSchema returns the schema GenerateDBLP and StreamDBLP produce.
func DBLPSchema() engine.Schema {
	return engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "pubid", Kind: value.String},
		{Name: "year", Kind: value.Int},
		{Name: "venue", Kind: value.String},
	}
}

// GenerateDBLP produces a synthetic Pub relation. Each author has an
// active career window, a home set of 2–4 venues, and a per-venue yearly
// publication rate that is either constant or drifts linearly — the two
// trend families CAPE's regression models capture. Counts per
// (author, venue, year) are Poisson draws around the modeled rate, so
// mined patterns hold with realistic, imperfect goodness-of-fit.
func GenerateDBLP(cfg DBLPConfig) *engine.Table {
	tab := engine.NewTable(DBLPSchema())
	err := StreamDBLP(cfg, 0, func(batch []value.Tuple) error {
		return tab.AppendRows(batch)
	})
	if err != nil {
		panic("dataset: dblp generation failed: " + err.Error())
	}
	return tab
}

// StreamDBLP generates exactly the rows of GenerateDBLP(cfg) — the same
// pseudo-random stream, byte for byte — delivering them to fn in batches
// of at most batchSize rows (0 means a default batch). The batch slice
// is reused between calls but the row tuples are fresh, so fn may retain
// them; memory stays bounded by one batch regardless of cfg.Rows.
func StreamDBLP(cfg DBLPConfig, batchSize int, fn func(batch []value.Tuple) error) error {
	cfg = cfg.withDefaults()
	if batchSize <= 0 {
		batchSize = 8192
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	venues := make([]string, cfg.NumVenues)
	for i := range venues {
		if i < len(dblpVenueNames) {
			venues[i] = dblpVenueNames[i]
		} else {
			venues[i] = fmt.Sprintf("VEN%02d", i)
		}
	}

	batch := make([]value.Tuple, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := fn(batch)
		batch = batch[:0]
		return err
	}

	years := cfg.EndYear - cfg.StartYear + 1
	pubSeq := 0
	authorSeq := 0
	// The emitted-row counter replaces the consumer's row count in every
	// loop bound, keeping the rng call sequence — and therefore the row
	// stream — identical for every batch size.
	emitted := 0
	for emitted < cfg.Rows {
		authorSeq++
		author := fmt.Sprintf("A%04d", authorSeq)
		// Career window inside [StartYear, EndYear].
		careerLen := 3 + rng.Intn(years)
		if careerLen > years {
			careerLen = years
		}
		first := cfg.StartYear + rng.Intn(years-careerLen+1)
		// Home venues with affinity weights.
		nv := 2 + rng.Intn(3)
		if nv > len(venues) {
			nv = len(venues)
		}
		home := rng.Perm(len(venues))[:nv]
		// Trend family: 60% constant, 30% linear drift, 10% erratic.
		kind := rng.Float64()
		slope := 0.0
		if kind >= 0.6 && kind < 0.9 {
			slope = (rng.Float64() - 0.3) * 0.8 // mostly increasing
		}
		base := cfg.AvgPubsPerAuthorYear * (0.5 + rng.Float64())

		for dy := 0; dy < careerLen && emitted < cfg.Rows; dy++ {
			year := first + dy
			for rank, vi := range home {
				rate := base / float64(rank+1)
				if slope != 0 {
					rate += slope * float64(dy)
				}
				if kind >= 0.9 {
					rate = cfg.AvgPubsPerAuthorYear * rng.Float64() * 2
				}
				if rate < 0 {
					rate = 0
				}
				n := poisson(rng, rate)
				for i := 0; i < n && emitted < cfg.Rows; i++ {
					pubSeq++
					batch = append(batch, value.Tuple{
						value.NewString(author),
						value.NewString(fmt.Sprintf("P%07d", pubSeq)),
						value.NewInt(int64(year)),
						value.NewString(venues[vi]),
					})
					emitted++
					if len(batch) == batchSize {
						if err := flush(); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return flush()
}
