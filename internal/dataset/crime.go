package dataset

import (
	"fmt"
	"math/rand"

	"cape/internal/engine"
	"cape/internal/value"
)

// CrimeConfig parameterizes the synthetic crime-report generator modeled
// on the preprocessed Chicago crime dataset of the paper: discrete
// attributes with domain sizes from a handful to tens of thousands, a
// configurable attribute count from 4 to 11, and functional dependencies
// among the geographic attributes.
type CrimeConfig struct {
	// Rows is the number of crime-report rows to produce.
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// NumAttrs selects how many of the 11 attributes to include, in the
	// fixed order type, community, year, month, district, block, arrest,
	// domestic, beat, ward, hour. Minimum 3, maximum 11; default 7.
	NumAttrs int
	// NumCommunities is the number of community areas (default 25).
	NumCommunities int
	// NumTypes is the number of crime types (default 10).
	NumTypes int
	// StartYear/EndYear bound the report years (default 2005–2016).
	StartYear, EndYear int
}

func (c CrimeConfig) withDefaults() CrimeConfig {
	if c.Rows <= 0 {
		c.Rows = 10000
	}
	if c.NumAttrs == 0 {
		c.NumAttrs = 7
	}
	if c.NumAttrs < 3 {
		c.NumAttrs = 3
	}
	if c.NumAttrs > len(crimeAttrOrder) {
		c.NumAttrs = len(crimeAttrOrder)
	}
	if c.NumCommunities <= 0 {
		c.NumCommunities = 25
	}
	if c.NumTypes <= 0 {
		c.NumTypes = 10
	}
	if c.StartYear == 0 {
		c.StartYear = 2005
	}
	if c.EndYear == 0 {
		c.EndYear = 2016
	}
	if c.EndYear < c.StartYear {
		c.EndYear = c.StartYear
	}
	return c
}

// crimeAttrOrder fixes the attribute order used when NumAttrs truncates
// the schema. Geographic FDs hold by construction: block → community,
// community → district, beat → district, ward → community.
var crimeAttrOrder = []string{
	"type", "community", "year", "month", "district", "block",
	"arrest", "domestic", "beat", "ward", "hour",
}

// crimeTypeNames supplies the crime-type labels.
var crimeTypeNames = []string{
	"Battery", "Theft", "Narcotics", "Assault", "Burglary", "Robbery",
	"Criminal Damage", "Motor Vehicle Theft", "Fraud", "Weapons",
	"Homicide", "Arson", "Gambling", "Trespass", "Stalking",
}

// CrimeSchema returns the schema GenerateCrime and StreamCrime produce
// for cfg.
func CrimeSchema(cfg CrimeConfig) engine.Schema {
	cfg = cfg.withDefaults()
	attrs := crimeAttrOrder[:cfg.NumAttrs]
	sch := make(engine.Schema, len(attrs))
	for i, a := range attrs {
		kind := value.Int
		if a == "type" || a == "block" {
			kind = value.String
		}
		sch[i] = engine.Column{Name: a, Kind: kind}
	}
	return sch
}

// GenerateCrime produces a synthetic crime-report relation. Each
// (type, community) pair has a yearly incident rate that is constant or
// drifts linearly over the years; months modulate the rate seasonally.
// Rows carry derived geographic attributes respecting the FDs above, so
// the Appendix-D optimizations have real dependencies to find.
func GenerateCrime(cfg CrimeConfig) *engine.Table {
	tab := engine.NewTable(CrimeSchema(cfg))
	err := StreamCrime(cfg, 0, func(batch []value.Tuple) error {
		return tab.AppendRows(batch)
	})
	if err != nil {
		panic("dataset: crime generation failed: " + err.Error())
	}
	return tab
}

// StreamCrime generates exactly the rows of GenerateCrime(cfg) — the
// same pseudo-random stream, byte for byte — delivering them to fn in
// batches of at most batchSize rows (0 means a default batch). Memory is
// bounded by one batch: the batch slice is reused between calls, but the
// row tuples are fresh, so fn may retain them (a Table append or a
// SegmentWriter both work). This is how million-row benchmark tables are
// written to segment files without ever materializing the relation.
func StreamCrime(cfg CrimeConfig, batchSize int, fn func(batch []value.Tuple) error) error {
	cfg = cfg.withDefaults()
	if batchSize <= 0 {
		batchSize = 8192
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	attrs := crimeAttrOrder[:cfg.NumAttrs]
	years := cfg.EndYear - cfg.StartYear + 1

	// Per (type, community) trend model.
	type trend struct {
		base, slope float64
	}
	trends := make([]trend, cfg.NumTypes*cfg.NumCommunities)
	for i := range trends {
		base := 0.5 + rng.Float64()*4
		slope := 0.0
		if rng.Float64() < 0.4 {
			slope = (rng.Float64() - 0.5) * base / float64(years)
		}
		trends[i] = trend{base: base, slope: slope}
	}
	// Seasonal multipliers per month.
	var season [12]float64
	for m := range season {
		season[m] = 0.7 + 0.6*rng.Float64()
	}

	blocksPerCommunity := 40

	batch := make([]value.Tuple, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := fn(batch)
		batch = batch[:0]
		return err
	}
	emit := func(ti, ci, year, month int) error {
		blockIdx := rng.Intn(blocksPerCommunity)
		district := ci / 3 // community → district
		row := make(value.Tuple, 0, len(attrs))
		for _, a := range attrs {
			switch a {
			case "type":
				name := crimeTypeNames[ti%len(crimeTypeNames)]
				if ti >= len(crimeTypeNames) {
					name = fmt.Sprintf("Type%02d", ti)
				}
				row = append(row, value.NewString(name))
			case "community":
				row = append(row, value.NewInt(int64(ci+1)))
			case "year":
				row = append(row, value.NewInt(int64(year)))
			case "month":
				row = append(row, value.NewInt(int64(month+1)))
			case "district":
				row = append(row, value.NewInt(int64(district+1)))
			case "block":
				// block encodes its community: block → community.
				row = append(row, value.NewString(fmt.Sprintf("B%03d-%02d", ci+1, blockIdx)))
			case "arrest":
				row = append(row, value.NewInt(int64(rng.Intn(2))))
			case "domestic":
				row = append(row, value.NewInt(int64(rng.Intn(2))))
			case "beat":
				// beat encodes its district: beat → district.
				row = append(row, value.NewInt(int64((district+1)*100+blockIdx%10)))
			case "ward":
				// ward encodes its community: ward → community.
				row = append(row, value.NewInt(int64((ci+1)*2)))
			case "hour":
				row = append(row, value.NewInt(int64(rng.Intn(24))))
			}
		}
		batch = append(batch, row)
		if len(batch) == batchSize {
			return flush()
		}
		return nil
	}

	// The emitted-row counter drives every loop bound (never the
	// consumer's state), so the rng call sequence — and therefore the row
	// stream — is identical for every batch size.
	emitted := 0
	for emitted < cfg.Rows {
		ti := rng.Intn(cfg.NumTypes)
		ci := rng.Intn(cfg.NumCommunities)
		tr := trends[ti*cfg.NumCommunities+ci]
		dy := rng.Intn(years)
		year := cfg.StartYear + dy
		month := rng.Intn(12)
		rate := (tr.base + tr.slope*float64(dy)) * season[month] / 4
		if rate < 0.05 {
			rate = 0.05
		}
		n := poisson(rng, rate)
		for i := 0; i < n && emitted < cfg.Rows; i++ {
			if err := emit(ti, ci, year, month); err != nil {
				return err
			}
			emitted++
		}
	}
	return flush()
}
