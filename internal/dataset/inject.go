package dataset

import (
	"fmt"

	"cape/internal/engine"
	"cape/internal/value"
)

// GroundTruth records one injected outlier/counterbalance pair for the
// parameter-sensitivity experiment (Section 5.3): the attribute set the
// injection operated on (F ∪ V of the chosen pattern), the group that was
// turned into an outlier, the group that carries the counterbalance, the
// outlier direction, and the magnitude.
type GroundTruth struct {
	Attrs        []string
	OutlierTuple value.Tuple
	CounterTuple value.Tuple
	// Dir is "low" when rows were removed from the outlier group (and
	// added to the counterbalance group), "high" for the reverse.
	Dir   string
	Delta int
}

// InjectCounterbalance returns a copy of tab where the count of the group
// identified by (attrs = outlier) is decreased by delta rows and the
// count of (attrs = counter) increased by delta rows — creating a low
// outlier whose ground-truth explanation is the counterbalance group.
// Pass dir "high" to flip the operation (outlier raised, counterbalance
// lowered). New rows clone an existing row of the receiving group, so
// attributes outside attrs (and any FDs they embed) stay realistic; the
// receiving group must therefore already contain at least one row.
func InjectCounterbalance(tab *engine.Table, attrs []string, outlier, counter value.Tuple, delta int, dir string) (*engine.Table, GroundTruth, error) {
	gt := GroundTruth{
		Attrs:        append([]string(nil), attrs...),
		OutlierTuple: outlier.Clone(),
		CounterTuple: counter.Clone(),
		Dir:          dir,
		Delta:        delta,
	}
	if delta <= 0 {
		return nil, gt, fmt.Errorf("dataset: delta must be positive, got %d", delta)
	}
	shrink, grow := outlier, counter
	switch dir {
	case "low":
	case "high":
		shrink, grow = counter, outlier
	default:
		return nil, gt, fmt.Errorf("dataset: dir must be \"low\" or \"high\", got %q", dir)
	}
	idx, err := tab.Schema().Indices(attrs)
	if err != nil {
		return nil, gt, err
	}
	matches := func(row value.Tuple, want value.Tuple) bool {
		for i, ci := range idx {
			if !value.Equal(row[ci], want[i]) {
				return false
			}
		}
		return true
	}

	out := engine.NewTable(tab.Schema())
	removed := 0
	var template value.Tuple
	for _, row := range tab.Rows() {
		if removed < delta && matches(row, shrink) {
			removed++
			continue
		}
		if template == nil && matches(row, grow) {
			template = row
		}
		out.MustAppend(row.Clone())
	}
	if removed < delta {
		return nil, gt, fmt.Errorf("dataset: group %v has only %d rows, cannot remove %d", shrink, removed, delta)
	}
	if template == nil {
		return nil, gt, fmt.Errorf("dataset: receiving group %v has no template row", grow)
	}
	for i := 0; i < delta; i++ {
		out.MustAppend(template.Clone())
	}
	return out, gt, nil
}

// RunningExample builds the deterministic mini-DBLP instance used by the
// quickstart example: three authors publishing in three venues over
// 2005–2009 with constant yearly totals, except that AX published only 1
// SIGKDD paper in 2007 while publishing 7 ICDE papers that year — the
// paper's introduction scenario, with the counterbalance planted.
func RunningExample() *engine.Table {
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	venues := []string{"SIGKDD", "VLDB", "ICDE"}
	for year := int64(2005); year <= 2009; year++ {
		for _, v := range venues {
			counts := map[string]int{"AX": 4, "AY": 3, "AZ": 3}
			if year == 2007 && v == "SIGKDD" {
				counts["AX"] = 1
			}
			if year == 2007 && v == "ICDE" {
				counts["AX"] = 7
			}
			for _, a := range []string{"AX", "AY", "AZ"} {
				for i := 0; i < counts[a]; i++ {
					tab.MustAppend(value.Tuple{
						value.NewString(a), value.NewString(v), value.NewInt(year),
					})
				}
			}
		}
	}
	return tab
}
