package dataset

import (
	"path/filepath"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

// collectStream drains a streaming generator into a slice of rows.
func collectStream(t *testing.T, stream func(int, func([]value.Tuple) error) error, batchSize int) []value.Tuple {
	t.Helper()
	var rows []value.Tuple
	err := stream(batchSize, func(batch []value.Tuple) error {
		if batchSize > 0 && len(batch) > batchSize {
			t.Fatalf("batch of %d rows exceeds batchSize %d", len(batch), batchSize)
		}
		rows = append(rows, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestStreamMatchesGenerate pins the streaming generators to their
// materializing counterparts: every batch size must reproduce the same
// row stream byte for byte.
func TestStreamMatchesGenerate(t *testing.T) {
	crimeCfg := CrimeConfig{Rows: 2500, Seed: 9, NumAttrs: 8}
	dblpCfg := DBLPConfig{Rows: 2500, Seed: 9}
	cases := []struct {
		name   string
		want   *engine.Table
		stream func(int, func([]value.Tuple) error) error
	}{
		{"crime", GenerateCrime(crimeCfg), func(bs int, fn func([]value.Tuple) error) error {
			return StreamCrime(crimeCfg, bs, fn)
		}},
		{"dblp", GenerateDBLP(dblpCfg), func(bs int, fn func([]value.Tuple) error) error {
			return StreamDBLP(dblpCfg, bs, fn)
		}},
	}
	for _, tc := range cases {
		for _, bs := range []int{1, 7, 100, 4096, 100000} {
			rows := collectStream(t, tc.stream, bs)
			if len(rows) != tc.want.NumRows() {
				t.Fatalf("%s batch %d: %d rows, want %d", tc.name, bs, len(rows), tc.want.NumRows())
			}
			for i, r := range rows {
				if !r.Equal(tc.want.Row(i)) {
					t.Fatalf("%s batch %d: row %d = %v, want %v", tc.name, bs, i, r, tc.want.Row(i))
				}
			}
		}
	}
}

// TestStreamIntoSegment streams a generator straight into a
// SegmentWriter — the million-row path used by cape convert and
// benchscale — and checks the persisted segment holds the exact rows.
func TestStreamIntoSegment(t *testing.T) {
	cfg := CrimeConfig{Rows: 3000, Seed: 4, NumAttrs: 6}
	w := engine.NewSegmentWriter(CrimeSchema(cfg))
	err := StreamCrime(cfg, 512, func(batch []value.Tuple) error {
		return w.AppendRows(batch)
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crime.seg")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := engine.OpenSegTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := GenerateCrime(cfg)
	if st.NumRows() != want.NumRows() {
		t.Fatalf("segment rows = %d, want %d", st.NumRows(), want.NumRows())
	}
	i := 0
	err = st.ScanRows(0, st.NumRows(), func(row value.Tuple) error {
		if !row.Equal(want.Row(i)) {
			t.Fatalf("segment row %d = %v, want %v", i, row, want.Row(i))
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
