package dataset

import (
	"math/rand"
	"testing"

	"cape/internal/value"
)

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 2, 10, 50} {
		n := 20000
		var sum int
		for i := 0; i < n; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if mean < lambda*0.9 || mean > lambda*1.1 {
			t.Errorf("poisson(%g) sample mean = %g", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestGenerateDBLPShape(t *testing.T) {
	tab := GenerateDBLP(DBLPConfig{Rows: 2000, Seed: 7})
	if tab.NumRows() != 2000 {
		t.Errorf("rows = %d, want 2000", tab.NumRows())
	}
	names := tab.Schema().Names()
	want := []string{"author", "pubid", "year", "venue"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("schema[%d] = %q, want %q", i, names[i], n)
		}
	}
	// pubid is unique.
	n, err := tab.CountDistinct([]string{"pubid"})
	if err != nil {
		t.Fatal(err)
	}
	if n != tab.NumRows() {
		t.Errorf("pubid distinct = %d of %d rows", n, tab.NumRows())
	}
	// Years within range.
	for _, r := range tab.Rows() {
		y := r[2].Int()
		if y < 2000 || y > 2015 {
			t.Fatalf("year %d out of range", y)
		}
	}
	// Several authors and venues.
	na, _ := tab.CountDistinct([]string{"author"})
	nv, _ := tab.CountDistinct([]string{"venue"})
	if na < 10 || nv < 5 {
		t.Errorf("authors = %d, venues = %d: too few", na, nv)
	}
}

func TestGenerateDBLPDeterministic(t *testing.T) {
	a := GenerateDBLP(DBLPConfig{Rows: 500, Seed: 3})
	b := GenerateDBLP(DBLPConfig{Rows: 500, Seed: 3})
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ across identical seeds")
	}
	for i := range a.Rows() {
		if !a.Row(i).Equal(b.Row(i)) {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
	c := GenerateDBLP(DBLPConfig{Rows: 500, Seed: 4})
	same := true
	for i := 0; i < 50 && i < c.NumRows(); i++ {
		if !a.Row(i).Equal(c.Row(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical prefixes")
	}
}

func TestGenerateCrimeShape(t *testing.T) {
	tab := GenerateCrime(CrimeConfig{Rows: 3000, Seed: 11, NumAttrs: 11})
	if tab.NumRows() != 3000 {
		t.Errorf("rows = %d", tab.NumRows())
	}
	if len(tab.Schema()) != 11 {
		t.Errorf("attrs = %d, want 11", len(tab.Schema()))
	}
	// Attribute truncation honored and ordered.
	small := GenerateCrime(CrimeConfig{Rows: 100, Seed: 11, NumAttrs: 5})
	names := small.Schema().Names()
	want := []string{"type", "community", "year", "month", "district"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("schema[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestGenerateCrimeFDsHold(t *testing.T) {
	tab := GenerateCrime(CrimeConfig{Rows: 5000, Seed: 5, NumAttrs: 11})
	check := func(lhs, rhs string) {
		t.Helper()
		li := tab.Schema().Index(lhs)
		ri := tab.Schema().Index(rhs)
		seen := map[string]value.V{}
		for _, r := range tab.Rows() {
			k := r[li].String()
			if prev, ok := seen[k]; ok {
				if !value.Equal(prev, r[ri]) {
					t.Fatalf("FD %s → %s violated at %s: %v vs %v", lhs, rhs, k, prev, r[ri])
				}
			} else {
				seen[k] = r[ri]
			}
		}
	}
	check("block", "community")
	check("community", "district")
	check("beat", "district")
	check("ward", "community")
}

func TestGenerateCrimeAttrBounds(t *testing.T) {
	tooMany := GenerateCrime(CrimeConfig{Rows: 50, Seed: 1, NumAttrs: 99})
	if len(tooMany.Schema()) != len(crimeAttrOrder) {
		t.Errorf("NumAttrs should clamp to %d, got %d", len(crimeAttrOrder), len(tooMany.Schema()))
	}
	tooFew := GenerateCrime(CrimeConfig{Rows: 50, Seed: 1, NumAttrs: 1})
	if len(tooFew.Schema()) != 3 {
		t.Errorf("NumAttrs should clamp to 3, got %d", len(tooFew.Schema()))
	}
}

func TestInjectCounterbalanceLow(t *testing.T) {
	tab := RunningExample()
	attrs := []string{"author", "venue", "year"}
	outlier := value.Tuple{value.NewString("AY"), value.NewString("VLDB"), value.NewInt(2006)}
	counter := value.Tuple{value.NewString("AY"), value.NewString("ICDE"), value.NewInt(2006)}
	injected, gt, err := InjectCounterbalance(tab, attrs, outlier, counter, 2, "low")
	if err != nil {
		t.Fatal(err)
	}
	if injected.NumRows() != tab.NumRows() {
		t.Errorf("total rows changed: %d vs %d", injected.NumRows(), tab.NumRows())
	}
	count := func(tb interface {
		Rows() []value.Tuple
	}, want value.Tuple) int {
		n := 0
		for _, r := range tb.Rows() {
			if value.Tuple(r[:3]).Equal(want) {
				n++
			}
		}
		return n
	}
	if got := count(injected, outlier); got != count(tab, outlier)-2 {
		t.Errorf("outlier group = %d rows, want %d", got, count(tab, outlier)-2)
	}
	if got := count(injected, counter); got != count(tab, counter)+2 {
		t.Errorf("counter group = %d rows, want %d", got, count(tab, counter)+2)
	}
	if gt.Dir != "low" || gt.Delta != 2 {
		t.Errorf("ground truth = %+v", gt)
	}
}

func TestInjectCounterbalanceHigh(t *testing.T) {
	tab := RunningExample()
	attrs := []string{"author", "venue", "year"}
	outlier := value.Tuple{value.NewString("AZ"), value.NewString("VLDB"), value.NewInt(2008)}
	counter := value.Tuple{value.NewString("AZ"), value.NewString("SIGKDD"), value.NewInt(2008)}
	injected, _, err := InjectCounterbalance(tab, attrs, outlier, counter, 1, "high")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range injected.Rows() {
		if value.Tuple(r[:3]).Equal(outlier) {
			n++
		}
	}
	if n != 4 { // 3 + 1 added
		t.Errorf("high injection: outlier group has %d rows, want 4", n)
	}
}

func TestInjectErrors(t *testing.T) {
	tab := RunningExample()
	attrs := []string{"author", "venue", "year"}
	out := value.Tuple{value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2007)}
	ctr := value.Tuple{value.NewString("AX"), value.NewString("ICDE"), value.NewInt(2007)}
	if _, _, err := InjectCounterbalance(tab, attrs, out, ctr, 0, "low"); err == nil {
		t.Error("zero delta should error")
	}
	if _, _, err := InjectCounterbalance(tab, attrs, out, ctr, 1, "sideways"); err == nil {
		t.Error("bad direction should error")
	}
	if _, _, err := InjectCounterbalance(tab, attrs, out, ctr, 100, "low"); err == nil {
		t.Error("removing more rows than exist should error")
	}
	ghost := value.Tuple{value.NewString("NOBODY"), value.NewString("X"), value.NewInt(1999)}
	if _, _, err := InjectCounterbalance(tab, attrs, out, ghost, 1, "low"); err == nil {
		t.Error("empty receiving group should error")
	}
	if _, _, err := InjectCounterbalance(tab, []string{"nope"}, out[:1], ctr[:1], 1, "low"); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestRunningExampleInvariants(t *testing.T) {
	tab := RunningExample()
	// AX totals 12 every year (the counterbalance preserves the total).
	counts := map[int64]int{}
	for _, r := range tab.Rows() {
		if r[0].Str() == "AX" {
			counts[r[2].Int()]++
		}
	}
	for y, n := range counts {
		if n != 12 {
			t.Errorf("AX total in %d = %d, want 12", y, n)
		}
	}
	// The outlier and counterbalance are present.
	var kdd07, icde07 int
	for _, r := range tab.Rows() {
		if r[0].Str() == "AX" && r[2].Int() == 2007 {
			switch r[1].Str() {
			case "SIGKDD":
				kdd07++
			case "ICDE":
				icde07++
			}
		}
	}
	if kdd07 != 1 || icde07 != 7 {
		t.Errorf("AX 2007: SIGKDD=%d ICDE=%d, want 1 and 7", kdd07, icde07)
	}
}
