// Package dataset generates the synthetic workloads the experiment
// harness runs on. The paper evaluated on a DBLP extract and the Chicago
// crime dataset; neither ships with this repository, so seeded generators
// produce data with the same structural properties the experiments
// depend on: controllable row count and attribute count, realistic group
// cardinalities, planted constant/linear trends for the miners to find,
// functional dependencies among the crime attributes, and injectable
// outlier/counterbalance pairs for the ground-truth precision experiment
// (Section 5.3).
package dataset

import (
	"math"
	"math/rand"
)

// poisson draws a Poisson-distributed count with mean lambda using
// Knuth's multiplication method, adequate for the small rates the
// generators use. Large lambdas use a normal approximation.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(rng.NormFloat64()*math.Sqrt(lambda) + lambda + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
