package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n), or 0 for
// fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SumSquaredDev returns Σ (x - mean)².
func SumSquaredDev(xs []float64) float64 {
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss
}

// Clamp01 clamps x into the closed interval [0, 1]; NaN maps to 0.
func Clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
