package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// Reference values from scipy.special.gammainc.
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 0.6321205588285577},     // 1 - e^-1
		{0.5, 0.5, 0.6826894921370859}, // erf(sqrt(0.5))... P(0.5, 0.5)
		{2, 3, 0.8008517265285442},
		{5, 5, 0.5595067149347875},
		{10, 3, 0.0011024881301856177},
		{3, 20, 1 - math.Exp(-20)*221}, // closed form: 1 − e⁻²⁰(1+20+200)
	}
	for _, c := range cases {
		got, err := RegularizedGammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("P(%g,%g): %v", c.a, c.x, err)
		}
		if !almostEq(got, c.want, 1e-10) {
			t.Errorf("P(%g,%g) = %.15g, want %.15g", c.a, c.x, got, c.want)
		}
	}
}

func TestRegularizedGammaPQComplementary(t *testing.T) {
	f := func(ai, xi uint8) bool {
		a := 0.25 + float64(ai%40)*0.5
		x := float64(xi%60) * 0.4
		p, err1 := RegularizedGammaP(a, x)
		q, err2 := RegularizedGammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(p+q, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegularizedGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10} {
		prev := -1.0
		for x := 0.0; x <= 30; x += 0.5 {
			p, err := RegularizedGammaP(a, x)
			if err != nil {
				t.Fatalf("P(%g,%g): %v", a, x, err)
			}
			if p < prev-1e-12 {
				t.Fatalf("P(%g, ·) not monotone at x=%g: %g < %g", a, x, p, prev)
			}
			if p < 0 || p > 1 {
				t.Fatalf("P(%g,%g)=%g outside [0,1]", a, x, p)
			}
			prev = p
		}
	}
}

func TestRegularizedGammaDomainErrors(t *testing.T) {
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("a=0 should error")
	}
	if _, err := RegularizedGammaP(-1, 1); err == nil {
		t.Error("a<0 should error")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("x<0 should error")
	}
	if _, err := RegularizedGammaQ(math.NaN(), 1); err == nil {
		t.Error("NaN a should error")
	}
	if _, err := RegularizedGammaQ(1, math.NaN()); err == nil {
		t.Error("NaN x should error")
	}
}

func TestRegularizedGammaBoundary(t *testing.T) {
	p, err := RegularizedGammaP(3, 0)
	if err != nil || p != 0 {
		t.Errorf("P(3,0) = %g, %v; want 0", p, err)
	}
	q, err := RegularizedGammaQ(3, 0)
	if err != nil || q != 1 {
		t.Errorf("Q(3,0) = %g, %v; want 1", q, err)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from scipy.stats.chi2.cdf.
	cases := []struct {
		x, k, want float64
	}{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{2, 2, 0.6321205588285577},
		{10, 5, 0.9247647538534878},
		{1, 10, 0.00017211562995584072},
	}
	for _, c := range cases {
		got, err := ChiSquareCDF(c.x, c.k)
		if err != nil {
			t.Fatalf("cdf(%g,%g): %v", c.x, c.k, err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("ChiSquareCDF(%g, %g) = %.12g, want %.12g", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareSFComplement(t *testing.T) {
	for _, k := range []float64{1, 2, 5, 30} {
		for x := 0.1; x < 50; x += 1.3 {
			cdf, err1 := ChiSquareCDF(x, k)
			sf, err2 := ChiSquareSF(x, k)
			if err1 != nil || err2 != nil {
				t.Fatalf("errors at x=%g k=%g: %v %v", x, k, err1, err2)
			}
			if !almostEq(cdf+sf, 1, 1e-9) {
				t.Errorf("cdf+sf = %g at x=%g k=%g", cdf+sf, x, k)
			}
		}
	}
}

func TestChiSquareEdges(t *testing.T) {
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("k=0 should error")
	}
	if sf, _ := ChiSquareSF(0, 3); sf != 1 {
		t.Errorf("SF(0) = %g, want 1", sf)
	}
	if sf, _ := ChiSquareSF(-5, 3); sf != 1 {
		t.Errorf("SF(-5) = %g, want 1", sf)
	}
	if cdf, _ := ChiSquareCDF(-5, 3); cdf != 0 {
		t.Errorf("CDF(-5) = %g, want 0", cdf)
	}
}
