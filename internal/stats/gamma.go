// Package stats provides the statistical primitives the regression layer
// needs: the regularized incomplete gamma function, the chi-square CDF,
// and small descriptive-statistics helpers. Everything is implemented from
// scratch on top of math, because the paper's substrate (scipy) is not
// available to a stdlib-only Go build.
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned when a function is evaluated outside its domain.
var ErrDomain = errors.New("stats: argument out of domain")

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// RegularizedGammaP computes P(a, x) = γ(a, x)/Γ(a), the lower regularized
// incomplete gamma function, for a > 0 and x >= 0. It selects between the
// series expansion (x < a+1) and the continued fraction (x >= a+1) as in
// Numerical Recipes §6.2.
func RegularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// RegularizedGammaQ computes Q(a, x) = 1 - P(a, x), the upper regularized
// incomplete gamma function.
func RegularizedGammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation. Converges
// fast for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, errors.New("stats: gamma series did not converge")
}

// gammaContinuedFraction evaluates Q(a,x) by the modified Lentz method.
// Converges fast for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, errors.New("stats: gamma continued fraction did not converge")
}

// ChiSquareCDF returns Pr[X <= x] for a chi-square random variable with k
// degrees of freedom.
func ChiSquareCDF(x float64, k float64) (float64, error) {
	if k <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 0, nil
	}
	return RegularizedGammaP(k/2, x/2)
}

// ChiSquareSF returns the survival function Pr[X > x] (the p-value of a
// chi-square statistic x with k degrees of freedom).
func ChiSquareSF(x float64, k float64) (float64, error) {
	if k <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 1, nil
	}
	return RegularizedGammaQ(k/2, x/2)
}
