package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) should be 0")
	}
	if Variance([]float64{7}) != 0 {
		t.Error("Variance of single value should be 0")
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceShiftInvariance(t *testing.T) {
	xs := []float64{1, 3, 7, 2, 9}
	shifted := make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = x + 1000
	}
	if !almostEq(Variance(xs), Variance(shifted), 1e-6) {
		t.Errorf("variance not shift-invariant: %g vs %g", Variance(xs), Variance(shifted))
	}
}

func TestSumSquaredDev(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := SumSquaredDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("SumSquaredDev = %g, want 2", got)
	}
	if got := SumSquaredDev(xs); !almostEq(got, Variance(xs)*float64(len(xs)), 1e-12) {
		t.Errorf("SumSquaredDev inconsistent with Variance: %g", got)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {math.NaN(), 0},
		{math.Inf(1), 1}, {math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}
