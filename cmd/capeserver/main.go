// Command capeserver serves the CAPE explanation system over HTTP: load
// CSV tables, mine pattern sets offline, and answer "why is this value
// high/low?" questions online.
//
// Usage:
//
//	capeserver [-addr :8080] [-load name=path.csv ...] [-patterns-dir dir]
//	           [-data-dir dir] [-fsync always|never] [-flush-rows n]
//
// With -data-dir, tables live in crash-safe WAL stores under that
// directory: every store found there is recovered at startup (sealed
// segments + WAL replay, restoring the exact epoch sequence so stamped
// pattern stores line up without re-mining), -load bootstraps new
// stores from CSV, and /v1/append acknowledges only after the batch is
// WAL-durable per -fsync.
//
// Example session:
//
//	capeserver -data-dir ./cape-data -load pub=pubs.csv &
//	curl -X POST localhost:8080/v1/mine -d '{"table":"pub","theta":0.3,"localSupport":3,"lambda":0.3,"globalSupport":2}'
//	curl -X POST localhost:8080/v1/explain -d '{"patterns":"ps-1","groupBy":["author","venue","year"],"tuple":["AX","SIGKDD","2007"],"dir":"low","k":5}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/server"
	"cape/internal/store"
)

// loadFlags collects repeated -load name=path pairs.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"default worker goroutines per explanation request (1 = sequential; requests may override)")
	var loads loadFlags
	flag.Var(&loads, "load", "preload a table as name=path.csv (repeatable)")
	patternsDir := flag.String("patterns-dir", "",
		"load persisted pattern stores (written by 'cape mine -out') from this directory at startup")
	dataDir := flag.String("data-dir", "",
		"durable table storage: recover every store under this directory at startup and WAL all appends")
	fsync := flag.String("fsync", "always",
		"WAL fsync policy for -data-dir stores: 'always' (ack implies durable) or 'never' (OS decides)")
	flushRows := flag.Int("flush-rows", 50000,
		"seal the WAL tail into a column segment every n appended rows (0 = only at shutdown)")
	ansCache := flag.Int("anscache", 0,
		"answer-cache entries per pattern set (0 = default 4096, negative disables)")
	flag.Parse()

	srv := server.New()
	srv.ExplainParallelism = *parallel
	srv.AnswerCacheSize = *ansCache

	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("capeserver: %v", err)
		}
		srv.DataDir = *dataDir
		srv.StoreOptions = store.Options{Sync: policy, FlushEvery: *flushRows}
		if err := recoverStores(srv); err != nil {
			log.Fatalf("capeserver: %v", err)
		}
	}

	for _, spec := range loads {
		eq := strings.IndexByte(spec, '=')
		if eq <= 0 {
			log.Fatalf("capeserver: bad -load %q (want name=path.csv)", spec)
		}
		name, path := spec[:eq], spec[eq+1:]
		if _, ok := srv.Table(name); ok {
			fmt.Printf("table %q already recovered from %s; ignoring -load %s\n", name, *dataDir, path)
			continue
		}
		tab, err := engine.ReadCSVFile(path)
		if err != nil {
			log.Fatalf("capeserver: loading %s: %v", path, err)
		}
		if *dataDir != "" {
			if err := srv.BootstrapStore(name, tab); err != nil {
				log.Fatalf("capeserver: bootstrapping store for %q: %v", name, err)
			}
			fmt.Printf("loaded %s into durable store %s: %d rows, columns %v\n",
				name, filepath.Join(*dataDir, name), tab.NumRows(), tab.Schema().Names())
		} else {
			srv.AddTable(name, tab)
			fmt.Printf("loaded %s: %d rows, columns %v\n", name, tab.NumRows(), tab.Schema().Names())
		}
	}
	if *patternsDir != "" {
		entries, err := pattern.LoadStoreEntries(*patternsDir)
		if err != nil {
			log.Fatalf("capeserver: loading pattern stores: %v", err)
		}
		for _, entry := range entries {
			id, warning := srv.AddPatternSetEntry(entry)
			freshness := "fresh"
			switch {
			case entry.Stamp == nil:
				freshness = "un-stamped (legacy store; staleness undetectable)"
			case warning != "":
				freshness = "stale"
			}
			fmt.Printf("loaded pattern store %s: table %q, %d patterns, %s\n",
				id, entry.Table, len(entry.Patterns), freshness)
			if warning != "" {
				log.Printf("capeserver: WARNING: %s", warning)
			}
		}
	}

	// Serve until SIGINT/SIGTERM, then seal WAL tails so the next boot
	// replays nothing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("capeserver listening on %s\n", *addr)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	if err := srv.CloseStores(); err != nil {
		log.Fatalf("capeserver: closing stores: %v", err)
	}
	fmt.Println("capeserver: stores sealed, bye")
}

// recoverStores opens every store directory under the data dir and
// attaches the recovered tables.
func recoverStores(srv *server.Server) error {
	ents, err := os.ReadDir(srv.DataDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // fresh data dir; created on first bootstrap
		}
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(srv.DataDir, e.Name())
		st, err := store.Open(dir, srv.StoreOptions)
		if err != nil {
			if errors.Is(err, store.ErrNoStore) {
				fmt.Printf("skipping %s: no store manifest\n", dir)
				continue
			}
			// Fail loudly: a store that cannot recover must never be
			// silently dropped or half-loaded.
			return fmt.Errorf("recovering %s: %w", dir, err)
		}
		if err := srv.AttachStore(st.TableName(), st); err != nil {
			return err
		}
		info := st.Info()
		fmt.Printf("recovered %s: table %q, %d rows (epoch %d), %d segments + %d replayed WAL batches, fsync=%s\n",
			dir, info.Table, info.Rows, info.Epoch, info.Segments, info.Replayed, info.Sync)
	}
	return nil
}
