// Command capeserver serves the CAPE explanation system over HTTP: load
// CSV tables, mine pattern sets offline, and answer "why is this value
// high/low?" questions online.
//
// Usage:
//
//	capeserver [-addr :8080] [-load name=path.csv ...] [-patterns-dir dir]
//
// Example session:
//
//	capeserver -load pub=pubs.csv &
//	curl -X POST localhost:8080/v1/mine -d '{"table":"pub","theta":0.3,"localSupport":3,"lambda":0.3,"globalSupport":2}'
//	curl -X POST localhost:8080/v1/explain -d '{"patterns":"ps-1","groupBy":["author","venue","year"],"tuple":["AX","SIGKDD","2007"],"dir":"low","k":5}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/server"
)

// loadFlags collects repeated -load name=path pairs.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"default worker goroutines per explanation request (1 = sequential; requests may override)")
	var loads loadFlags
	flag.Var(&loads, "load", "preload a table as name=path.csv (repeatable)")
	patternsDir := flag.String("patterns-dir", "",
		"load persisted pattern stores (written by 'cape mine -out') from this directory at startup")
	flag.Parse()

	srv := server.New()
	srv.ExplainParallelism = *parallel
	for _, spec := range loads {
		eq := strings.IndexByte(spec, '=')
		if eq <= 0 {
			log.Fatalf("capeserver: bad -load %q (want name=path.csv)", spec)
		}
		name, path := spec[:eq], spec[eq+1:]
		tab, err := engine.ReadCSVFile(path)
		if err != nil {
			log.Fatalf("capeserver: loading %s: %v", path, err)
		}
		srv.AddTable(name, tab)
		fmt.Printf("loaded %s: %d rows, columns %v\n", name, tab.NumRows(), tab.Schema().Names())
	}
	if *patternsDir != "" {
		entries, err := pattern.LoadStoreEntries(*patternsDir)
		if err != nil {
			log.Fatalf("capeserver: loading pattern stores: %v", err)
		}
		for _, entry := range entries {
			id, warning := srv.AddPatternSetEntry(entry)
			freshness := "fresh"
			switch {
			case entry.Stamp == nil:
				freshness = "un-stamped (legacy store; staleness undetectable)"
			case warning != "":
				freshness = "stale"
			}
			fmt.Printf("loaded pattern store %s: table %q, %d patterns, %s\n",
				id, entry.Table, len(entry.Patterns), freshness)
			if warning != "" {
				log.Printf("capeserver: WARNING: %s", warning)
			}
		}
	}

	fmt.Printf("capeserver listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
