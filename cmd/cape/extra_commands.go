package main

import (
	"errors"
	"flag"
	"fmt"

	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/intervention"
	"cape/internal/mining"
	"cape/internal/pattern"
)

// cmdGeneralize prints drill-up explanations: coarser aggregates
// deviating in the question's own direction.
func cmdGeneralize(args []string) error {
	fs := flag.NewFlagSet("generalize", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	patternsPath := fs.String("patterns", "", "patterns JSON from 'cape mine -o' (mines on the fly if empty)")
	groupBy, tuple, dir, k := questionFlags(fs)
	opts, _ := miningFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	q, err := buildQuestion(tab, *groupBy, *tuple, *dir)
	if err != nil {
		return err
	}

	var mined []*pattern.Mined
	if *patternsPath != "" {
		mined, err = pattern.ReadJSONFile(*patternsPath)
		if err != nil {
			return err
		}
	} else {
		opt := opts()
		if opt.Attributes == nil {
			opt.Attributes = q.GroupBy
		}
		res, err := mining.ARPMine(tab, opt)
		if err != nil {
			return err
		}
		mined = res.Patterns
	}

	gens, err := explain.Generalize(q, tab, mined, explain.Options{K: *k})
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	if len(gens) == 0 {
		fmt.Println("no coarser-granularity deviation in the question's direction")
		return nil
	}
	for i, g := range gens {
		fmt.Printf("%3d. %s\n", i+1, g)
	}
	return nil
}

// cmdIntervene runs the provenance-restricted intervention explainer.
func cmdIntervene(args []string) error {
	fs := flag.NewFlagSet("intervene", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	groupBy, tuple, dir, k := questionFlags(fs)
	expected := fs.Float64("expected", 0, "target aggregate value (default: average of the other groups)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	q, err := buildQuestion(tab, *groupBy, *tuple, *dir)
	if err != nil {
		return err
	}
	expls, err := intervention.Explain(q, tab, intervention.Options{K: *k, Expected: *expected})
	if errors.Is(err, intervention.ErrLowQuestion) {
		fmt.Printf("question: %s\n\n%v\n", q, err)
		fmt.Println("(try 'cape explain' — counterbalance explanations handle low outcomes)")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	if len(expls) == 0 {
		fmt.Println("the value is not above the expected level; nothing to explain away")
		return nil
	}
	for i, e := range expls {
		fmt.Printf("%3d. %s\n", i+1, e)
	}
	return nil
}
