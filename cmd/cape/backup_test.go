package main

import (
	"path/filepath"
	"testing"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/store"
)

// TestCmdExportImportRoundTrip: a store exported to JSONL and imported
// into a fresh directory recovers the same table — rows, epoch, name.
func TestCmdExportImportRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	src := filepath.Join(tmp, "pub")
	orig := dataset.RunningExample()
	st, err := store.Bootstrap(src, "pub", orig, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	backup := filepath.Join(tmp, "pub.jsonl")
	if err := cmdExport([]string{"-store", src, "-o", backup}); err != nil {
		t.Fatalf("export: %v", err)
	}
	dst := filepath.Join(tmp, "restored")
	if err := cmdImport([]string{"-store", dst, "-i", backup}); err != nil {
		t.Fatalf("import: %v", err)
	}

	re, err := store.Open(dst, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	info := re.Info()
	if info.Table != "pub" || info.Rows != orig.NumRows() || info.Epoch != orig.Epoch() {
		t.Fatalf("restored table=%q rows=%d epoch=%d, want pub/%d/%d",
			info.Table, info.Rows, info.Epoch, orig.NumRows(), orig.Epoch())
	}
	tab := re.Table().(*engine.Table)
	for i, row := range orig.Rows() {
		for c := range row {
			if got := tab.Row(i)[c]; got != row[c] {
				t.Fatalf("row %d col %d = %s, want %s", i, c, got, row[c])
			}
		}
	}

	// Importing over an existing store must refuse, not clobber.
	if err := cmdImport([]string{"-store", dst, "-i", backup}); err == nil {
		t.Fatal("import over an existing store succeeded")
	}
}
