// Command cape is the command-line interface to the CAPE explanation
// system: generate synthetic data, mine aggregate regression patterns
// offline, and explain surprising aggregate query results online.
//
// Usage:
//
//	cape generate -dataset dblp|crime -rows N [-attrs A] [-seed S] -o data.csv
//	cape convert  -data data.csv -o data.seg
//	cape mine     -data data.csv [mining flags] [-o patterns.json]
//	cape append   -data data.csv -rows rows.jsonl -patterns-dir dir [-o grown.csv]
//	cape query    -data data.csv -q "SELECT venue, count(*) FROM data GROUP BY venue"
//	cape explain  -data data.csv -groupby a,b,c -tuple v1,v2,v3 -dir low
//	              [-patterns patterns.json | mining flags] [-k 10]
//	cape explain-batch -data data.csv -questions questions.jsonl
//	              [-patterns patterns.json | mining flags] [-k 10] [-json]
//	cape baseline -data data.csv -groupby a,b,c -tuple v1,v2,v3 -dir low [-k 10]
//	cape export   -store data-dir/table [-o backup.jsonl]
//	cape import   -store data-dir/table [-i backup.jsonl] [-fsync always|never]
//
// The mine/explain split mirrors the paper's architecture: pattern mining
// runs offline and its output (patterns.json) serves any number of online
// questions.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "mine":
		err = cmdMine(os.Args[2:])
	case "append":
		err = cmdAppend(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "explain-batch":
		err = cmdExplainBatch(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "generalize":
		err = cmdGeneralize(os.Args[2:])
	case "intervene":
		err = cmdIntervene(os.Args[2:])
	case "baseline":
		err = cmdBaseline(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "remote-status":
		err = cmdRemoteStatus(os.Args[2:])
	case "remote-load":
		err = cmdRemoteLoad(os.Args[2:])
	case "remote-mine":
		err = cmdRemoteMine(os.Args[2:])
	case "remote-explain":
		err = cmdRemoteExplain(os.Args[2:])
	case "remote-explain-batch":
		err = cmdRemoteExplainBatch(os.Args[2:])
	case "remote-append":
		err = cmdRemoteAppend(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cape: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cape %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: cape <command> [flags]

commands:
  generate  produce a synthetic DBLP or Crime CSV dataset
  convert   stream a CSV dataset into a compressed columnar segment file
  mine      mine aggregate regression patterns from a CSV dataset
  append    fold JSONL rows into a dataset and its mined pattern store
  query     run a SQL query against a CSV dataset
  explain   explain a surprising aggregate result with counterbalances
  explain-batch  answer a JSONL file of questions in one shared-cache batch
  generalize  explanations by drill-up (same-direction coarser deviations)
  intervene squash a high outlier with provenance predicates (Scorpion-style)
  baseline  run the pattern-blind baseline explainer for comparison
  export    stream a durable table store (capeserver -data-dir) as JSONL backup
  import    rebuild a durable table store from a JSONL backup

remote mode (against a running capeserver or capeshard coordinator,
over one shared keep-alive transport):
  remote-status         print GET /v1 (per-shard health on a coordinator)
  remote-load           upload a CSV as a server-side table
  remote-mine           mine a pattern set server-side, print its id
  remote-explain        ask one question against a server-side pattern set
  remote-explain-batch  send a JSONL question file as one batch
  remote-append         stream JSONL rows into the table (keyed routing
                        and aggregate durability on a coordinator)

run "cape <command> -h" for the command's flags
`)
}
