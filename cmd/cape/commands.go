package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"cape/internal/baseline"
	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/sql"
	"cape/internal/value"
)

// cmdGenerate writes a synthetic dataset as CSV.
func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	ds := fs.String("dataset", "dblp", "dataset family: dblp or crime")
	rows := fs.Int("rows", 10000, "number of rows")
	attrs := fs.Int("attrs", 7, "number of attributes (crime only, 3-11)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tab *engine.Table
	switch *ds {
	case "dblp":
		tab = dataset.GenerateDBLP(dataset.DBLPConfig{Rows: *rows, Seed: *seed})
	case "crime":
		tab = dataset.GenerateCrime(dataset.CrimeConfig{Rows: *rows, Seed: *seed, NumAttrs: *attrs})
	default:
		return fmt.Errorf("unknown dataset %q (want dblp or crime)", *ds)
	}
	if *out == "" {
		return tab.WriteCSV(os.Stdout)
	}
	if err := tab.WriteCSVFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows, %d attributes to %s\n", tab.NumRows(), len(tab.Schema()), *out)
	return nil
}

// miningFlags registers the shared mining flags and returns a builder
// plus the -parallel value, which also drives explanation generation.
func miningFlags(fs *flag.FlagSet) (func() mining.Options, *int) {
	psi := fs.Int("psi", 3, "maximum pattern size ψ (|F ∪ V|)")
	theta := fs.Float64("theta", 0.5, "local model quality threshold θ")
	localSupp := fs.Int("localsupp", 5, "local support threshold δ")
	lambda := fs.Float64("lambda", 0.5, "global confidence threshold λ")
	globalSupp := fs.Int("globalsupp", 5, "global support threshold Δ")
	attrs := fs.String("attrs", "", "comma-separated attributes to mine over (default: all)")
	aggs := fs.String("aggs", "count", "comma-separated aggregate functions (count,sum,min,max,avg)")
	useFDs := fs.Bool("fd", false, "enable functional-dependency pruning")
	parallel := fs.Int("parallel", runtime.NumCPU(), "worker goroutines for mining and explanation generation")
	build := func() mining.Options {
		opt := mining.Options{
			MaxPatternSize: *psi,
			Thresholds: pattern.Thresholds{
				Theta: *theta, LocalSupport: *localSupp,
				Lambda: *lambda, GlobalSupport: *globalSupp,
			},
			UseFDs:      *useFDs,
			Parallelism: *parallel,
		}
		if *attrs != "" {
			opt.Attributes = splitList(*attrs)
		}
		for _, a := range splitList(*aggs) {
			f, err := engine.ParseAggFunc(a)
			if err == nil {
				opt.AggFuncs = append(opt.AggFuncs, f)
			}
		}
		return opt
	}
	return build, parallel
}

// cmdMine mines patterns and prints or saves them.
func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	out := fs.String("o", "", "write mined patterns as JSON to this path")
	outDir := fs.String("out", "", "write the pattern set into this pattern-store directory (one versioned JSON file per table; load with capeserver -patterns-dir)")
	tableName := fs.String("table", "", "table name recorded in the pattern store (default: -data base name)")
	miner := fs.String("miner", "arpmine", "miner variant: arpmine, sharegrp, cube, naive")
	opts, _ := miningFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}

	var run func(engine.Relation, mining.Options) (*mining.Result, error)
	switch *miner {
	case "arpmine":
		run = mining.ARPMine
	case "sharegrp":
		run = mining.ShareGrp
	case "cube":
		run = mining.CubeMine
	case "naive":
		run = mining.Naive
	default:
		return fmt.Errorf("unknown miner %q", *miner)
	}
	opt := opts()
	start := time.Now()
	res, err := run(tab, opt)
	if err != nil {
		return err
	}
	fmt.Printf("mined %d patterns from %d rows in %v (%d candidates",
		len(res.Patterns), tab.NumRows(), time.Since(start).Round(time.Millisecond), res.Candidates)
	if res.SkippedByFD > 0 {
		fmt.Printf(", %d FD-pruned", res.SkippedByFD)
	}
	fmt.Println(")")
	for _, m := range res.Patterns {
		fmt.Printf("  %-55s conf=%.2f local=%d supp=%d\n",
			m.Pattern, m.Confidence, m.GlobalSupport(), m.NumSupported)
	}
	if *out != "" {
		if err := pattern.WriteJSONFile(*out, res.Patterns); err != nil {
			return err
		}
		fmt.Printf("wrote patterns to %s\n", *out)
	}
	if *outDir != "" {
		name := *tableName
		if name == "" {
			base := filepath.Base(*data)
			name = strings.TrimSuffix(base, filepath.Ext(base))
		}
		// Stamp the store with the source table's shape so loaders can
		// detect staleness, and record the mining spec so `cape append`
		// and /v1/append can rebuild a maintainer for the set. FD-pruned
		// runs have no reconstructible spec and persist stamp-only.
		stamp := &pattern.StoreStamp{Epoch: tab.Epoch(), Rows: tab.NumRows()}
		spec, specErr := mining.SpecFor(tab, opt)
		if specErr != nil {
			spec = nil
			fmt.Printf("note: store will not be append-maintainable: %v\n", specErr)
		}
		path, err := pattern.SaveStoreStamped(*outDir, name, res.Patterns, stamp, spec)
		if err != nil {
			return err
		}
		fmt.Printf("saved pattern store for table %q to %s\n", name, path)
	}
	return nil
}

// questionFlags registers the shared question flags.
func questionFlags(fs *flag.FlagSet) (groupBy, tuple, dir *string, k *int) {
	groupBy = fs.String("groupby", "", "comma-separated group-by attributes (required)")
	tuple = fs.String("tuple", "", "comma-separated group-by values of the question tuple (required)")
	dir = fs.String("dir", "low", "direction: low or high")
	k = fs.Int("k", 10, "number of explanations to return")
	return
}

// buildQuestion parses the question flags against the dataset.
func buildQuestion(tab *engine.Table, groupByFlag, tupleFlag, dirFlag string) (explain.UserQuestion, error) {
	var q explain.UserQuestion
	if groupByFlag == "" || tupleFlag == "" {
		return q, fmt.Errorf("-groupby and -tuple are required")
	}
	groupBy := splitList(groupByFlag)
	rawVals := splitList(tupleFlag)
	if len(rawVals) != len(groupBy) {
		return q, fmt.Errorf("-tuple has %d values for %d group-by attributes", len(rawVals), len(groupBy))
	}
	vals := make(value.Tuple, len(rawVals))
	for i, rv := range rawVals {
		vals[i] = value.Parse(rv)
	}
	dir, err := explain.ParseDirection(dirFlag)
	if err != nil {
		return q, err
	}
	agg := engine.AggSpec{Func: engine.Count}
	grouped, err := tab.GroupBy(groupBy, []engine.AggSpec{agg})
	if err != nil {
		return q, err
	}
	for _, row := range grouped.Rows() {
		if value.Tuple(row[:len(groupBy)]).Equal(vals) {
			return explain.UserQuestion{
				GroupBy: groupBy, Agg: agg, Values: vals,
				AggValue: row[len(groupBy)], Dir: dir,
			}, nil
		}
	}
	return q, fmt.Errorf("tuple (%s) is not a result of grouping by %s", tupleFlag, groupByFlag)
}

// cmdExplain answers a question, either with previously saved patterns or
// by mining on the fly.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	patternsPath := fs.String("patterns", "", "patterns JSON from 'cape mine -o' (mines on the fly if empty)")
	query := fs.String("query", "", "aggregate SQL query defining the question, e.g. \"SELECT a, b, count(*) FROM t GROUP BY a, b\" (alternative to -groupby)")
	jsonOut := fs.Bool("json", false, "emit explanations as JSON")
	groupBy, tuple, dir, k := questionFlags(fs)
	numericAttrs := fs.String("numeric", "", "comma-separated attr=scale pairs for numeric distances, e.g. year=4")
	opts, parallel := miningFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	gb := *groupBy
	if *query != "" {
		stmt, err := sql.Parse(*query)
		if err != nil {
			return err
		}
		qGroupBy, _, err := sql.AggregateQuery(stmt)
		if err != nil {
			return err
		}
		gb = strings.Join(qGroupBy, ",")
	}
	q, err := buildQuestion(tab, gb, *tuple, *dir)
	if err != nil {
		return err
	}

	var mined []*pattern.Mined
	if *patternsPath != "" {
		mined, err = pattern.ReadJSONFile(*patternsPath)
		if err != nil {
			return err
		}
	} else {
		opt := opts()
		if opt.Attributes == nil {
			opt.Attributes = q.GroupBy
		}
		res, err := mining.ARPMine(tab, opt)
		if err != nil {
			return err
		}
		mined = res.Patterns
		fmt.Printf("mined %d patterns on the fly\n", len(mined))
	}

	metric, err := parseMetric(*numericAttrs)
	if err != nil {
		return err
	}
	start := time.Now()
	expls, stats, err := explain.GenOpt(q, tab, mined, explain.Options{K: *k, Metric: metric, Parallelism: *parallel})
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeExplanationsJSON(os.Stdout, q, expls, stats)
	}
	fmt.Printf("question: %s\n", q)
	fmt.Printf("%d explanations in %v (%d relevant patterns, %d candidates, %d refinements pruned)\n\n",
		len(expls), time.Since(start).Round(time.Millisecond),
		stats.RelevantPatterns, stats.Candidates, stats.PrunedRefinements)
	for i, e := range expls {
		fmt.Printf("%3d. %s\n", i+1, e)
	}
	return nil
}

// writeExplanationsJSON renders the result machine-readably, including
// the Example-5 style narration per explanation.
func writeExplanationsJSON(w io.Writer, q explain.UserQuestion, expls []explain.Explanation, stats *explain.Stats) error {
	type entry struct {
		Attrs     []string    `json:"attrs"`
		Tuple     value.Tuple `json:"tuple"`
		AggValue  value.V     `json:"aggValue"`
		Predicted float64     `json:"predicted"`
		Deviation float64     `json:"deviation"`
		Distance  float64     `json:"distance"`
		Score     float64     `json:"score"`
		Relevant  string      `json:"relevantPattern"`
		Refined   string      `json:"refinedPattern"`
		Narration string      `json:"narration"`
	}
	out := struct {
		Question     string         `json:"question"`
		Stats        *explain.Stats `json:"stats"`
		Explanations []entry        `json:"explanations"`
	}{Question: q.String(), Stats: stats}
	for _, e := range expls {
		out.Explanations = append(out.Explanations, entry{
			Attrs: e.Attrs, Tuple: e.Tuple, AggValue: e.AggValue,
			Predicted: e.Predicted, Deviation: e.Deviation,
			Distance: e.Distance, Score: e.Score,
			Relevant: e.Relevant.String(), Refined: e.Refined.String(),
			Narration: e.Narrate(q),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// cmdBaseline runs the Appendix-A.2 baseline for comparison.
func cmdBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	groupBy, tuple, dir, k := questionFlags(fs)
	numericAttrs := fs.String("numeric", "", "comma-separated attr=scale pairs for numeric distances")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	q, err := buildQuestion(tab, *groupBy, *tuple, *dir)
	if err != nil {
		return err
	}
	metric, err := parseMetric(*numericAttrs)
	if err != nil {
		return err
	}
	expls, err := baseline.Explain(q, tab, baseline.Options{K: *k, Metric: metric})
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	for i, e := range expls {
		fmt.Printf("%3d. %s\n", i+1, e)
	}
	return nil
}

// parseMetric builds a distance metric from "attr=scale" pairs.
func parseMetric(spec string) (*distance.Metric, error) {
	m := distance.NewMetric()
	if spec == "" {
		return m, nil
	}
	for _, part := range splitList(spec) {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad -numeric entry %q (want attr=scale)", part)
		}
		scale := value.Parse(part[eq+1:])
		f, ok := scale.AsFloat()
		if !ok || f <= 0 {
			return nil, fmt.Errorf("bad scale in -numeric entry %q", part)
		}
		m.SetFunc(part[:eq], distance.Numeric{Scale: f})
	}
	return m, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
