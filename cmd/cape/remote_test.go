package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cape/internal/server"
)

// startSharded brings up a 2-shard deployment behind a coordinator; the
// remote commands must work identically against it and a single node.
func startSharded(t *testing.T) string {
	t.Helper()
	s0 := httptest.NewServer(server.New())
	t.Cleanup(s0.Close)
	s1 := httptest.NewServer(server.New())
	t.Cleanup(s1.Close)
	coord, err := server.NewCoordinator(server.CoordConfig{
		Shards: []string{s0.URL, s1.URL}, Key: []string{"author"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	return cts.URL
}

func TestRemoteCommandsAgainstCoordinator(t *testing.T) {
	url := startSharded(t)
	csv := writeExampleCSV(t)

	msg, err := captureStdout(t, func() error {
		return cmdRemoteLoad([]string{"-server", url, "-table", "pub", "-data", csv})
	})
	if err != nil {
		t.Fatalf("remote-load: %v", err)
	}
	if !strings.Contains(msg, `"pub"`) {
		t.Errorf("load output = %q", msg)
	}

	msg, err = captureStdout(t, func() error {
		return cmdRemoteMine([]string{"-server", url, "-table", "pub",
			"-psi", "3", "-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2"})
	})
	if err != nil {
		t.Fatalf("remote-mine: %v", err)
	}
	if !strings.Contains(msg, "mined pattern set ps-1") {
		t.Errorf("mine output = %q", msg)
	}

	msg, err = captureStdout(t, func() error {
		return cmdRemoteExplain([]string{"-server", url, "-patterns", "ps-1",
			"-groupby", "author,venue", "-tuple", "AX,ICDE", "-dir", "low"})
	})
	if err != nil {
		t.Fatalf("remote-explain: %v", err)
	}
	if !strings.Contains(msg, "question:") {
		t.Errorf("explain output = %q", msg)
	}

	// Batch: one good question, one with an unknown tuple (per-item error).
	qfile := filepath.Join(t.TempDir(), "q.jsonl")
	lines := `{"groupBy":["author","venue"],"tuple":["AX","ICDE"],"dir":"low"}
{"groupBy":["author","venue"],"tuple":["NOBODY","ICDE"],"dir":"low"}
`
	if err := os.WriteFile(qfile, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	msg, err = captureStdout(t, func() error {
		return cmdRemoteExplainBatch([]string{"-server", url, "-patterns", "ps-1", "-questions", qfile})
	})
	if err != nil {
		t.Fatalf("remote-explain-batch: %v", err)
	}
	if !strings.Contains(msg, "1/2 questions answered") {
		t.Errorf("batch output = %q", msg)
	}

	// Append routes by key and reports aggregate durability.
	rfile := filepath.Join(t.TempDir(), "rows.jsonl")
	rows := `["AX","ICDE",2005]
["BY","VLDB",2006]
`
	if err := os.WriteFile(rfile, []byte(rows), 0o644); err != nil {
		t.Fatal(err)
	}
	msg, err = captureStdout(t, func() error {
		return cmdRemoteAppend([]string{"-server", url, "-table", "pub", "-rows", rfile})
	})
	if err != nil {
		t.Fatalf("remote-append: %v", err)
	}
	var aresp struct {
		Appended int  `json:"appended"`
		Durable  bool `json:"durable"`
	}
	if err := json.Unmarshal([]byte(msg), &aresp); err != nil {
		t.Fatalf("append output not JSON: %q", msg)
	}
	if aresp.Appended != 2 {
		t.Errorf("appended = %d, want 2", aresp.Appended)
	}

	msg, err = captureStdout(t, func() error {
		return cmdRemoteStatus([]string{"-server", url})
	})
	if err != nil {
		t.Fatalf("remote-status: %v", err)
	}
	if !strings.Contains(msg, `"coordinator"`) {
		t.Errorf("status output = %q", msg)
	}
}

func TestRemoteFlagValidation(t *testing.T) {
	if err := cmdRemoteStatus(nil); err == nil {
		t.Error("remote-status without -server should error")
	}
	if err := cmdRemoteExplain([]string{"-server", "http://x"}); err == nil {
		t.Error("remote-explain without question flags should error")
	}
	if err := cmdRemoteAppend([]string{"-server", "http://x"}); err == nil {
		t.Error("remote-append without -table/-rows should error")
	}
}

// TestRemoteRetryOn429 pins the shed-retry contract: remoteJSON honors
// Retry-After with bounded jittered backoff, succeeding once the server
// stops shedding and giving up with a descriptive error when it never
// does.
func TestRemoteRetryOn429(t *testing.T) {
	var slept []time.Duration
	origSleep := remoteSleep
	remoteSleep = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { remoteSleep = origSleep })

	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)

	var out struct {
		OK bool `json:"ok"`
	}
	if err := remoteJSON(http.MethodGet, ts.URL, nil, &out); err != nil {
		t.Fatalf("remoteJSON after two sheds: %v", err)
	}
	if !out.OK || calls != 3 {
		t.Fatalf("ok=%v calls=%d, want success on the third attempt", out.OK, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Attempt 0 honors Retry-After 2s: jittered into [1s, 2s]. Attempt 1
	// doubles to 4s: jittered into [2s, 4s].
	if slept[0] < time.Second || slept[0] > 2*time.Second {
		t.Errorf("first backoff %v outside [1s, 2s]", slept[0])
	}
	if slept[1] < 2*time.Second || slept[1] > 4*time.Second {
		t.Errorf("second backoff %v outside [2s, 4s]", slept[1])
	}

	// A server that never stops shedding: bounded retries, then a 429
	// error that says how often it tried.
	calls = 0
	slept = nil
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	t.Cleanup(always.Close)
	err := remoteJSON(http.MethodGet, always.URL, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("exhausted retries should surface a 429 error, got %v", err)
	}
	if calls != remoteMaxRetries+1 {
		t.Errorf("server saw %d calls, want %d", calls, remoteMaxRetries+1)
	}
	for i, d := range slept {
		if d > remoteRetryCap {
			t.Errorf("backoff %d = %v exceeds cap %v", i, d, remoteRetryCap)
		}
	}
}
