package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// batchSpec is one JSONL line of a question file — the same shape the
// /v1/explain/batch endpoint takes per item.
type batchSpec struct {
	GroupBy   []string `json:"groupBy"`
	Aggregate string   `json:"aggregate,omitempty"` // default count(*)
	Tuple     []string `json:"tuple"`
	Dir       string   `json:"dir"`
}

// cmdExplainBatch answers a whole JSONL file of questions in one batch,
// sharing pattern scans and group-by results across them. Malformed or
// unanswerable lines report per-item errors; the rest still run.
func cmdExplainBatch(args []string) error {
	fs := flag.NewFlagSet("explain-batch", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	questions := fs.String("questions", "", "JSONL question file, one {groupBy,aggregate,tuple,dir} object per line (required)")
	patternsPath := fs.String("patterns", "", "patterns JSON from 'cape mine -o' (mines on the fly if empty)")
	k := fs.Int("k", 10, "number of explanations per question")
	numericAttrs := fs.String("numeric", "", "comma-separated attr=scale pairs for numeric distances, e.g. year=4")
	jsonOut := fs.Bool("json", false, "emit the batch result as JSON")
	opts, parallel := miningFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *questions == "" {
		return fmt.Errorf("-data and -questions are required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	specs, specErrs, err := readQuestionJSONL(*questions)
	if err != nil {
		return err
	}

	// Resolve specs to questions; decode and resolution failures become
	// per-item errors so one bad line never sinks the batch.
	itemErrs := specErrs
	qs := make([]explain.UserQuestion, len(specs))
	qIdx := []int{}
	memo := map[string]*engine.Table{}
	for i, spec := range specs {
		if itemErrs[i] != nil {
			continue
		}
		q, err := resolveSpec(tab, spec, memo)
		if err != nil {
			itemErrs[i] = err
			continue
		}
		qs[i] = q
		qIdx = append(qIdx, i)
	}

	var mined []*pattern.Mined
	if *patternsPath != "" {
		mined, err = pattern.ReadJSONFile(*patternsPath)
		if err != nil {
			return err
		}
	} else {
		res, err := mining.ARPMine(tab, opts())
		if err != nil {
			return err
		}
		mined = res.Patterns
		fmt.Fprintf(os.Stderr, "mined %d patterns on the fly\n", len(mined))
	}
	metric, err := parseMetric(*numericAttrs)
	if err != nil {
		return err
	}

	valid := make([]explain.UserQuestion, len(qIdx))
	for j, i := range qIdx {
		valid[j] = qs[i]
	}
	start := time.Now()
	opt := explain.Options{K: *k, Metric: metric, Parallelism: *parallel}
	batch := explain.GenerateBatch(valid, tab, mined, opt)
	elapsed := time.Since(start)

	items := make([]explain.BatchItem, len(specs))
	for j, i := range qIdx {
		items[i] = batch[j]
	}
	for i, e := range itemErrs {
		if e != nil {
			items[i] = explain.BatchItem{Err: e}
		}
	}
	if *jsonOut {
		return writeBatchJSON(os.Stdout, qs, items)
	}
	ok := 0
	for _, it := range items {
		if it.Err == nil {
			ok++
		}
	}
	fmt.Printf("%d/%d questions answered in %v\n", ok, len(items), elapsed.Round(time.Millisecond))
	for i, it := range items {
		if it.Err != nil {
			fmt.Printf("\n[%d] error: %v\n", i, it.Err)
			continue
		}
		fmt.Printf("\n[%d] %s\n", i, qs[i])
		for j, e := range it.Explanations {
			fmt.Printf("%3d. %s\n", j+1, e)
		}
	}
	return nil
}

// readQuestionJSONL reads one batchSpec per non-blank line. Decode
// failures are returned per line (aligned with specs); only I/O errors
// abort.
func readQuestionJSONL(path string) ([]batchSpec, []error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var specs []batchSpec
	var errs []error
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var spec batchSpec
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			specs = append(specs, batchSpec{})
			errs = append(errs, fmt.Errorf("line %d: %v", line, err))
			continue
		}
		specs = append(specs, spec)
		errs = append(errs, nil)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return specs, errs, nil
}

// resolveSpec validates one spec against the table and looks up its
// aggregate value; memo caches the aggregate query results so specs
// sharing a (group-by, aggregate) run one query.
func resolveSpec(tab *engine.Table, spec batchSpec, memo map[string]*engine.Table) (explain.UserQuestion, error) {
	var q explain.UserQuestion
	if len(spec.GroupBy) == 0 || len(spec.Tuple) != len(spec.GroupBy) {
		return q, fmt.Errorf("groupBy and tuple must be non-empty and the same length")
	}
	dir, err := explain.ParseDirection(spec.Dir)
	if err != nil {
		return q, err
	}
	agg, err := engine.ParseAggSpec(spec.Aggregate)
	if err != nil {
		return q, err
	}
	key := strings.Join(spec.GroupBy, "\x1f") + "\x1e" + agg.String()
	grouped, ok := memo[key]
	if !ok {
		grouped, err = tab.GroupBy(spec.GroupBy, []engine.AggSpec{agg})
		if err != nil {
			return q, err
		}
		memo[key] = grouped
	}
	vals := make(value.Tuple, len(spec.Tuple))
	for i, rv := range spec.Tuple {
		vals[i] = value.Parse(rv)
	}
	for _, row := range grouped.Rows() {
		if value.Tuple(row[:len(spec.GroupBy)]).Equal(vals) {
			return explain.UserQuestion{
				GroupBy: spec.GroupBy, Agg: agg, Values: vals,
				AggValue: row[len(spec.GroupBy)], Dir: dir,
			}, nil
		}
	}
	return q, fmt.Errorf("tuple %v is not a result of the question query", spec.Tuple)
}

// writeBatchJSON renders the batch result machine-readably, mirroring
// the /v1/explain/batch response shape.
func writeBatchJSON(w io.Writer, qs []explain.UserQuestion, items []explain.BatchItem) error {
	type entry struct {
		Index        int            `json:"index"`
		Question     string         `json:"question,omitempty"`
		Error        string         `json:"error,omitempty"`
		Explanations []string       `json:"explanations,omitempty"`
		Narrations   []string       `json:"narrations,omitempty"`
		Stats        *explain.Stats `json:"stats,omitempty"`
	}
	out := make([]entry, len(items))
	for i, it := range items {
		out[i].Index = i
		if it.Err != nil {
			out[i].Error = it.Err.Error()
			continue
		}
		out[i].Question = qs[i].String()
		out[i].Stats = it.Stats
		for _, e := range it.Explanations {
			out[i].Explanations = append(out[i].Explanations, e.String())
			out[i].Narrations = append(out[i].Narrations, e.Narrate(qs[i]))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
