package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cape/internal/store"
)

// cape export / cape import: portable JSONL backups of durable table
// stores (the -data-dir directories capeserver writes). The stream is a
// header line naming the table, schema, row count, and epoch, followed
// by one JSON row array per line — the same row shape 'cape append
// -rows' reads, so a backup doubles as an append feed.

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir := fs.String("store", "", "durable store directory to export (required)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-store is required")
	}

	// Read-only: exporting must never repair, truncate, or flush the
	// store — it may belong to a running server.
	st, err := store.Open(*dir, store.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	defer st.Close()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := st.ExportJSONL(w); err != nil {
		return err
	}
	info := st.Info()
	fmt.Fprintf(os.Stderr, "exported table %q: %d rows (epoch %d)\n", info.Table, info.Rows, info.Epoch)
	return nil
}

func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	dir := fs.String("store", "", "store directory to create from the backup (required)")
	in := fs.String("i", "", "backup file (default stdin)")
	fsync := fs.String("fsync", "always", "fsync policy for the new store: always|never")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-store is required")
	}
	policy, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	st, err := store.ImportJSONL(*dir, r, store.Options{Sync: policy})
	if err != nil {
		return err
	}
	info := st.Info()
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "imported table %q into %s: %d rows (epoch %d), %d segments\n",
		info.Table, *dir, info.Rows, info.Epoch, info.Segments)
	return nil
}
