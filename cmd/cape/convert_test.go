package main

import (
	"path/filepath"
	"strings"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

func TestCmdConvert(t *testing.T) {
	csvPath := writeExampleCSV(t)
	segPath := filepath.Join(t.TempDir(), "pub.seg")
	msg, err := captureStdout(t, func() error {
		return cmdConvert([]string{"-data", csvPath, "-o", segPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "verified") || !strings.Contains(msg, "encoding") {
		t.Errorf("output = %q", msg)
	}

	// The segment must hold exactly the CSV's rows.
	want, err := engine.ReadCSVFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.OpenSegTable(segPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumRows() != want.NumRows() {
		t.Fatalf("segment rows = %d, want %d", st.NumRows(), want.NumRows())
	}
	i := 0
	err = st.ScanRows(0, st.NumRows(), func(row value.Tuple) error {
		if !row.Equal(want.Row(i)) {
			t.Fatalf("row %d = %v, want %v", i, row, want.Row(i))
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Missing flags error out.
	if _, err := captureStdout(t, func() error {
		return cmdConvert([]string{"-data", csvPath})
	}); err == nil {
		t.Error("missing -o should error")
	}
}
