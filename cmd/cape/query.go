package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cape/internal/engine"
	"cape/internal/sql"
)

// cmdQuery runs a SQL query against a CSV dataset and prints the result.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	table := fs.String("table", "", "table name for the query (default: file name without extension)")
	q := fs.String("q", "", "SQL query (required)")
	csvOut := fs.Bool("csv", false, "emit CSV instead of the aligned text grid")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *q == "" {
		return fmt.Errorf("-data and -q are required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	name := *table
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(*data), filepath.Ext(*data))
	}
	out, err := sql.Run(*q, sql.Catalog{name: tab})
	if err != nil {
		return err
	}
	if *csvOut {
		return out.WriteCSV(os.Stdout)
	}
	printGrid(out)
	fmt.Printf("(%d rows)\n", out.NumRows())
	return nil
}

// printGrid renders a table with column-aligned output.
func printGrid(t *engine.Table) {
	names := t.Schema().Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	rendered := make([][]string, t.NumRows())
	for ri, row := range t.Rows() {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		rendered[ri] = cells
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], c)
		}
		fmt.Println()
	}
	line(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, cells := range rendered {
		line(cells)
	}
}
