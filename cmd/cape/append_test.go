package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// TestCmdAppendMaintainsStore is the end-to-end CLI round trip: mine a
// stamped store, append JSONL rows through 'cape append', and pin the
// updated store byte-identical to a cold re-mine over the grown dataset.
func TestCmdAppendMaintainsStore(t *testing.T) {
	csv := writeExampleCSV(t)
	dir := t.TempDir()
	mineArgs := []string{
		"-data", csv, "-out", dir,
		"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
	}
	if _, err := captureStdout(t, func() error { return cmdMine(mineArgs) }); err != nil {
		t.Fatal(err)
	}

	rowsPath := filepath.Join(t.TempDir(), "rows.jsonl")
	jsonl := strings.Join([]string{
		`["AX", "VLDB", 2008]`,
		``, // blank lines are skipped
		`["NEW", "SIGKDD", 2009]`,
		`["AY", "ICDE", 2005]`,
	}, "\n")
	if err := os.WriteFile(rowsPath, []byte(jsonl), 0o644); err != nil {
		t.Fatal(err)
	}
	grown := filepath.Join(t.TempDir(), "grown.csv")
	out, err := captureStdout(t, func() error {
		return cmdAppend([]string{
			"-data", csv, "-rows", rowsPath, "-patterns-dir", dir, "-o", grown,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "appended 3 rows") {
		t.Errorf("append output = %q", out)
	}
	if strings.Contains(out, "warning") {
		t.Errorf("fresh store should not warn: %q", out)
	}

	// The updated store must equal a cold re-mine of the grown dataset
	// under the store's own spec.
	entries, err := pattern.LoadStoreEntries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Spec == nil || entries[0].Stamp == nil {
		t.Fatalf("store entries = %+v", entries)
	}
	tab, err := engine.ReadCSVFile(grown)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Stamp.Rows != tab.NumRows() {
		t.Errorf("stamp rows = %d, want %d", entries[0].Stamp.Rows, tab.NumRows())
	}
	opt, err := mining.OptionsFromSpec(entries[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := pattern.WriteJSON(&got, entries[0].Patterns); err != nil {
		t.Fatal(err)
	}
	if err := pattern.WriteJSON(&want, res.Patterns); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("maintained store diverges from re-mine of grown dataset:\n%s\nvs\n%s", &got, &want)
	}

	// A second append against the already-grown dataset must detect that
	// the original CSV (unchanged) no longer matches the store's stamp.
	out, err = captureStdout(t, func() error {
		return cmdAppend([]string{"-data", csv, "-rows", rowsPath, "-patterns-dir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stale") {
		t.Errorf("second append against the un-grown CSV should warn stale: %q", out)
	}
}

// TestCmdAppendErrors covers the guard rails: missing flags, missing
// store, malformed JSONL.
func TestCmdAppendErrors(t *testing.T) {
	csv := writeExampleCSV(t)
	if _, err := captureStdout(t, func() error { return cmdAppend(nil) }); err == nil {
		t.Error("missing flags should error")
	}
	if _, err := captureStdout(t, func() error {
		return cmdAppend([]string{"-data", csv, "-rows", csv, "-patterns-dir", t.TempDir()})
	}); err == nil {
		t.Error("missing store should error")
	}

	dir := t.TempDir()
	if _, err := captureStdout(t, func() error {
		return cmdMine([]string{"-data", csv, "-out", dir,
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2"})
	}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdAppend([]string{"-data", csv, "-rows", bad, "-patterns-dir", dir})
	}); err == nil {
		t.Error("malformed JSONL should error")
	}
}

// TestReadJSONLRows pins the row decoding rules: raw scalars map to
// String/Int/Float/NULL and kind-tagged objects pass through.
func TestReadJSONLRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	content := `["s", 3, 2.5, null, {"k":"int","i":7}]`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := readJSONLRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := value.Tuple{
		value.NewString("s"), value.NewInt(3), value.NewFloat(2.5),
		value.NewNull(), value.NewInt(7),
	}
	if !rows[0].Equal(want) {
		t.Errorf("row = %v, want %v", rows[0], want)
	}
}
