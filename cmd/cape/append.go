package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// cmdAppend applies a JSONL batch of rows to a dataset and incrementally
// maintains its persisted pattern store: the store's mining spec rebuilds
// the maintainer, the batch folds into the retained statistics, and the
// store is re-written with a fresh epoch/row stamp — the same result as
// re-mining from scratch, without the full group-sort-fit pipeline on
// the append path.
func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	rowsPath := fs.String("rows", "", "JSONL file of rows to append, one JSON array per line ('-' = stdin; required)")
	patternsDir := fs.String("patterns-dir", "", "pattern-store directory holding this table's mined set (required)")
	tableName := fs.String("table", "", "table name of the store entry (default: -data base name)")
	out := fs.String("o", "", "write the grown dataset as CSV to this path (default: dataset file is left unchanged)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *rowsPath == "" || *patternsDir == "" {
		return fmt.Errorf("-data, -rows, and -patterns-dir are required")
	}
	tab, err := engine.ReadCSVFile(*data)
	if err != nil {
		return err
	}
	name := *tableName
	if name == "" {
		base := filepath.Base(*data)
		name = strings.TrimSuffix(base, filepath.Ext(base))
	}

	entries, err := pattern.LoadStoreEntries(*patternsDir)
	if err != nil {
		return err
	}
	var entry *pattern.StoreEntry
	for _, e := range entries {
		if e.Table == name {
			entry = e
			break
		}
	}
	if entry == nil {
		return fmt.Errorf("no pattern store for table %q in %s", name, *patternsDir)
	}
	if entry.Spec == nil {
		return fmt.Errorf("store for %q has no mining spec (legacy or FD-pruned); re-mine it with 'cape mine -out %s'",
			name, *patternsDir)
	}
	switch {
	case entry.Stamp == nil:
		fmt.Println("warning: store is un-stamped; cannot verify it matches the dataset (it will be rebuilt)")
	case entry.Stamp.Rows != tab.NumRows() || entry.Stamp.Epoch != tab.Epoch():
		fmt.Printf("warning: store is stale (mined at rows=%d epoch=%d, dataset has rows=%d epoch=%d); maintenance will heal it\n",
			entry.Stamp.Rows, entry.Stamp.Epoch, tab.NumRows(), tab.Epoch())
	}

	rows, err := readJSONLRows(*rowsPath)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no rows to append in %s", *rowsPath)
	}

	opt, err := mining.OptionsFromSpec(entry.Spec)
	if err != nil {
		return err
	}
	buildStart := time.Now()
	m, err := mining.NewMaintainer(tab, opt)
	if err != nil {
		return err
	}
	buildDur := time.Since(buildStart)

	applyStart := time.Now()
	if err := m.Apply(rows); err != nil {
		return err
	}
	applyDur := time.Since(applyStart)

	maintained := m.Patterns()
	// Stamp with the epoch a fresh load of the persisted CSV will carry:
	// ReadCSV appends row by row, so its epoch equals the row count. The
	// in-memory epoch here is lower (the whole batch ticked once) and
	// would spuriously read as stale after a reload of -o's output.
	stamp := &pattern.StoreStamp{Epoch: uint64(tab.NumRows()), Rows: tab.NumRows()}
	path, err := pattern.SaveStoreStamped(*patternsDir, name, maintained, stamp, entry.Spec)
	if err != nil {
		return err
	}
	fmt.Printf("appended %d rows to %q (%d rows total); %d -> %d patterns\n",
		len(rows), name, tab.NumRows(), len(entry.Patterns), len(maintained))
	fmt.Printf("maintainer build %v, incremental apply %v\n",
		buildDur.Round(time.Millisecond), applyDur.Round(time.Microsecond))
	fmt.Printf("updated pattern store %s (stamped rows=%d epoch=%d)\n", path, stamp.Rows, stamp.Epoch)

	if *out != "" {
		if err := tab.WriteCSVFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote grown dataset to %s\n", *out)
	} else {
		fmt.Println("note: dataset file unchanged (pass -o to persist the appended rows)")
	}
	return nil
}

// readJSONLRows parses a JSONL file of rows: one JSON array per line,
// each element a raw scalar (string, number, null) or kind-tagged value
// object. Blank lines are skipped.
func readJSONLRows(path string) ([]value.Tuple, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var rows []value.Tuple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var raws []json.RawMessage
		if err := json.Unmarshal([]byte(line), &raws); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		t, err := value.ParseJSONTuple(raws)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		rows = append(rows, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
