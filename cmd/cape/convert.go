package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"cape/internal/engine"
	"cape/internal/value"
)

// cmdConvert streams a CSV dataset into the on-disk columnar segment
// format. Rows pass straight from the CSV reader into a SegmentWriter,
// so memory stays bounded by the dictionaries and run buffers — the
// source never materializes as a Table, which is what makes multi-
// million-row conversions possible. After writing, the segment is
// reopened (validating every checksum) and a per-column encoding report
// is printed.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	data := fs.String("data", "", "input CSV dataset (required)")
	out := fs.String("o", "", "output segment path (required, conventionally .seg)")
	quiet := fs.Bool("q", false, "suppress the per-column encoding report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return fmt.Errorf("-data and -o are required")
	}

	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	defer f.Close()

	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("reading CSV header: %w", err)
	}
	sch := make(engine.Schema, len(header))
	for i, name := range header {
		sch[i] = engine.Column{Name: name, Kind: value.Null}
	}
	w := engine.NewSegmentWriter(sch)
	row := make(value.Tuple, len(sch))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading CSV row: %w", err)
		}
		if len(rec) != len(sch) {
			return fmt.Errorf("row %d has %d fields, header has %d", w.NumRows()+1, len(rec), len(sch))
		}
		for i, field := range rec {
			row[i] = value.Parse(field)
		}
		if err := w.Append(row); err != nil {
			return err
		}
	}

	if err := w.WriteFile(*out); err != nil {
		return err
	}

	// Reopen to verify: OpenSegment checks the header, footer, and every
	// column block against their CRCs before returning.
	seg, err := engine.OpenSegment(*out)
	if err != nil {
		return fmt.Errorf("verifying written segment: %w", err)
	}
	defer seg.Close()
	if seg.NumRows() != w.NumRows() {
		return fmt.Errorf("verify: segment has %d rows, wrote %d", seg.NumRows(), w.NumRows())
	}

	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d rows, %d columns to %s (%d bytes), verified\n",
		seg.NumRows(), len(seg.Schema()), *out, info.Size())
	if *quiet {
		return nil
	}
	fmt.Printf("%-20s %8s %10s %8s\n", "column", "encoding", "dict", "runs")
	for ci, col := range seg.Schema() {
		cc := seg.Col(ci)
		runs := "-"
		if n := cc.NumRuns(); n > 0 {
			runs = fmt.Sprint(n)
		}
		fmt.Printf("%-20s %8s %10d %8s\n", col.Name, cc.EncodingName(), len(cc.Dict()), runs)
	}
	return nil
}
