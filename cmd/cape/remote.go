package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"cape/internal/httpc"
	"cape/internal/server"
)

// Remote mode: the same CLI verbs, executed against a running capeserver
// or capeshard coordinator instead of a local CSV. All commands go
// through httpc.Default, the keep-alive transport shared with the
// coordinator's own shard fan-out, so a scripted loop of thousands of
// questions reuses a small set of warm connections instead of opening
// one per request.

// remoteClient is swappable in tests; everything else uses the tuned
// shared transport.
var remoteClient = httpc.Default

// A shed request (429) is retried with bounded, jittered backoff: up to
// remoteMaxRetries extra attempts, each waiting roughly the server's
// Retry-After hint doubled per attempt and capped — a scripted loop of
// cape calls rides out a load spike instead of failing, without
// hammering a coordinator that just told everyone to back off.
const (
	remoteMaxRetries = 4
	remoteRetryCap   = 5 * time.Second
)

// remoteSleep is swappable in tests so retry behavior is assertable
// without real waiting.
var remoteSleep = time.Sleep

// retryDelay computes the wait before retry `attempt` (0-based): the
// Retry-After hint (default 1s when absent or unparseable) doubled per
// attempt, capped, then jittered into [delay/2, delay] so a fleet of
// shed clients does not return in one synchronized wave.
func retryDelay(retryAfter string, attempt int) time.Duration {
	base := time.Second
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s > 0 {
		base = time.Duration(s) * time.Second
	}
	delay := base << attempt
	if delay > remoteRetryCap {
		delay = remoteRetryCap
	}
	half := delay / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// remoteJSON POSTs (or GETs) JSON and decodes the response body into
// out. Non-2xx responses become errors carrying the server's message;
// 429 is retried per retryDelay before giving up.
func remoteJSON(method, url string, in, out interface{}) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, url, body)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := remoteClient.Do(req)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < remoteMaxRetries {
			remoteSleep(retryDelay(resp.Header.Get("Retry-After"), attempt))
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			msg := strings.TrimSpace(string(raw))
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(raw, &e) == nil && e.Error != "" {
				msg = e.Error
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				return fmt.Errorf("server shed the request (429, Retry-After %s) %d times: %s",
					resp.Header.Get("Retry-After"), attempt+1, msg)
			}
			return fmt.Errorf("server returned %d: %s", resp.StatusCode, msg)
		}
		if out != nil {
			return json.Unmarshal(raw, out)
		}
		return nil
	}
}

// serverFlag registers -server and returns a getter that validates it.
func serverFlag(fs *flag.FlagSet) func() (string, error) {
	url := fs.String("server", "", "base URL of a capeserver or capeshard coordinator (required)")
	return func() (string, error) {
		if *url == "" {
			return "", fmt.Errorf("-server is required")
		}
		return strings.TrimSuffix(*url, "/"), nil
	}
}

// cmdRemoteStatus prints GET /v1 — on a coordinator this includes the
// per-shard health and the diverged list.
func cmdRemoteStatus(args []string) error {
	fs := flag.NewFlagSet("remote-status", flag.ExitOnError)
	srv := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := srv()
	if err != nil {
		return err
	}
	var status json.RawMessage
	if err := remoteJSON(http.MethodGet, url+"/v1", nil, &status); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, status, "", " "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = os.Stdout.Write(buf.Bytes())
	return err
}

// cmdRemoteLoad streams a CSV into the server; a coordinator partitions
// it across its shards by the deployment key.
func cmdRemoteLoad(args []string) error {
	fs := flag.NewFlagSet("remote-load", flag.ExitOnError)
	srv := serverFlag(fs)
	data := fs.String("data", "", "CSV file to upload (required)")
	table := fs.String("table", "", "table name on the server (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := srv()
	if err != nil {
		return err
	}
	if *data == "" || *table == "" {
		return fmt.Errorf("-data and -table are required")
	}
	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	defer f.Close()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/tables?name="+*table, f)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := remoteClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("server returned %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	fmt.Printf("%s", raw)
	return nil
}

// cmdRemoteMine mines a pattern set on the server and prints its id.
func cmdRemoteMine(args []string) error {
	fs := flag.NewFlagSet("remote-mine", flag.ExitOnError)
	srv := serverFlag(fs)
	table := fs.String("table", "", "server-side table to mine (required)")
	opts, _ := miningFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := srv()
	if err != nil {
		return err
	}
	if *table == "" {
		return fmt.Errorf("-table is required")
	}
	opt := opts()
	mreq := server.MineRequest{
		Table:          *table,
		Attributes:     opt.Attributes,
		MaxPatternSize: opt.MaxPatternSize,
		Theta:          opt.Thresholds.Theta,
		LocalSupport:   opt.Thresholds.LocalSupport,
		Lambda:         opt.Thresholds.Lambda,
		GlobalSupport:  opt.Thresholds.GlobalSupport,
		UseFDs:         opt.UseFDs,
		Parallelism:    opt.Parallelism,
	}
	for _, f := range opt.AggFuncs {
		mreq.Aggregates = append(mreq.Aggregates, f.String())
	}
	var out struct {
		ID       string `json:"id"`
		Table    string `json:"table"`
		Patterns int    `json:"patterns"`
	}
	if err := remoteJSON(http.MethodPost, url+"/v1/mine", mreq, &out); err != nil {
		return err
	}
	fmt.Printf("mined pattern set %s on table %q: %d patterns\n", out.ID, out.Table, out.Patterns)
	return nil
}

// cmdRemoteExplain asks one question against a server-side pattern set.
func cmdRemoteExplain(args []string) error {
	fs := flag.NewFlagSet("remote-explain", flag.ExitOnError)
	srv := serverFlag(fs)
	patterns := fs.String("patterns", "", "server-side pattern set id from remote-mine (required)")
	aggregate := fs.String("aggregate", "", `aggregate, e.g. "count(*)" (default count(*))`)
	jsonOut := fs.Bool("json", false, "emit the raw JSON response")
	groupBy, tuple, dir, k := questionFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := srv()
	if err != nil {
		return err
	}
	if *patterns == "" || *groupBy == "" || *tuple == "" {
		return fmt.Errorf("-patterns, -groupby, and -tuple are required")
	}
	ereq := server.ExplainRequest{
		Patterns:  *patterns,
		GroupBy:   splitList(*groupBy),
		Aggregate: *aggregate,
		Tuple:     splitList(*tuple),
		Dir:       *dir,
		K:         *k,
	}
	var out struct {
		Question     string `json:"question"`
		Explanations []struct {
			Score     float64 `json:"score"`
			Narration string  `json:"narration"`
		} `json:"explanations"`
		Raw json.RawMessage `json:"-"`
	}
	var raw json.RawMessage
	if err := remoteJSON(http.MethodPost, url+"/v1/explain", ereq, &raw); err != nil {
		return err
	}
	if *jsonOut {
		var buf bytes.Buffer
		if err := json.Indent(&buf, raw, "", " "); err != nil {
			return err
		}
		buf.WriteByte('\n')
		_, err = os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return err
	}
	fmt.Printf("question: %s\n%d explanations\n\n", out.Question, len(out.Explanations))
	for i, e := range out.Explanations {
		fmt.Printf("%3d. [%.3f] %s\n", i+1, e.Score, e.Narration)
	}
	return nil
}

// cmdRemoteExplainBatch sends a JSONL question file as one batch.
func cmdRemoteExplainBatch(args []string) error {
	fs := flag.NewFlagSet("remote-explain-batch", flag.ExitOnError)
	srv := serverFlag(fs)
	patterns := fs.String("patterns", "", "server-side pattern set id from remote-mine (required)")
	questions := fs.String("questions", "", "JSONL question file, one {groupBy,aggregate,tuple,dir} object per line (required)")
	k := fs.Int("k", 10, "number of explanations per question")
	jsonOut := fs.Bool("json", false, "emit the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := srv()
	if err != nil {
		return err
	}
	if *patterns == "" || *questions == "" {
		return fmt.Errorf("-patterns and -questions are required")
	}
	specs, specErrs, err := readQuestionJSONL(*questions)
	if err != nil {
		return err
	}
	for i, e := range specErrs {
		if e != nil {
			return fmt.Errorf("bad question %d: %v", i, e)
		}
	}
	breq := server.ExplainBatchRequest{Patterns: *patterns, K: *k}
	for _, s := range specs {
		breq.Questions = append(breq.Questions, server.QuestionSpec{
			GroupBy: s.GroupBy, Aggregate: s.Aggregate, Tuple: s.Tuple, Dir: s.Dir,
		})
	}
	var raw json.RawMessage
	if err := remoteJSON(http.MethodPost, url+"/v1/explain/batch", breq, &raw); err != nil {
		return err
	}
	if *jsonOut {
		var buf bytes.Buffer
		if err := json.Indent(&buf, raw, "", " "); err != nil {
			return err
		}
		buf.WriteByte('\n')
		_, err = os.Stdout.Write(buf.Bytes())
		return err
	}
	var out struct {
		OK     int `json:"ok"`
		Failed int `json:"failed"`
		Items  []struct {
			Index        int               `json:"index"`
			Question     string            `json:"question"`
			Error        string            `json:"error"`
			Explanations []json.RawMessage `json:"explanations"`
		} `json:"items"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return err
	}
	fmt.Printf("%d/%d questions answered\n", out.OK, out.OK+out.Failed)
	for _, it := range out.Items {
		if it.Error != "" {
			fmt.Printf("[%d] error: %s\n", it.Index, it.Error)
			continue
		}
		fmt.Printf("[%d] %s: %d explanations\n", it.Index, it.Question, len(it.Explanations))
	}
	return nil
}

// cmdRemoteAppend streams a JSONL row file into POST /v1/append; on a
// coordinator the batch is routed by key to the owning shards and the
// response reports aggregate durability.
func cmdRemoteAppend(args []string) error {
	fs := flag.NewFlagSet("remote-append", flag.ExitOnError)
	srv := serverFlag(fs)
	table := fs.String("table", "", "server-side table to append to (required)")
	rowsPath := fs.String("rows", "", "JSONL file of rows, one JSON array per line ('-' = stdin; required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := srv()
	if err != nil {
		return err
	}
	if *table == "" || *rowsPath == "" {
		return fmt.Errorf("-table and -rows are required")
	}
	rows, err := readRawJSONLRows(*rowsPath)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no rows to append in %s", *rowsPath)
	}
	var raw json.RawMessage
	if err := remoteJSON(http.MethodPost, url+"/v1/append",
		server.AppendRequest{Table: *table, Rows: rows}, &raw); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", " "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = os.Stdout.Write(buf.Bytes())
	return err
}

// readRawJSONLRows reads rows as raw JSON arrays — the server does the
// value parsing, so the CLI only validates the line shape.
func readRawJSONLRows(path string) ([][]json.RawMessage, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var rows [][]json.RawMessage
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var raws []json.RawMessage
		if err := json.Unmarshal([]byte(line), &raws); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		rows = append(rows, raws)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
