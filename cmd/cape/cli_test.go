package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cape/internal/dataset"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	runErr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// writeExampleCSV materializes the running example for CLI tests.
func writeExampleCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pub.csv")
	if err := dataset.RunningExample().WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdGenerate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dblp.csv")
	msg, err := captureStdout(t, func() error {
		return cmdGenerate([]string{"-dataset", "dblp", "-rows", "500", "-o", out})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "500 rows") {
		t.Errorf("output = %q", msg)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("output file missing: %v", err)
	}

	if _, err := captureStdout(t, func() error {
		return cmdGenerate([]string{"-dataset", "bogus"})
	}); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestCmdGenerateCrimeToStdout(t *testing.T) {
	msg, err := captureStdout(t, func() error {
		return cmdGenerate([]string{"-dataset", "crime", "-rows", "50", "-attrs", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(msg, "type,community,year,month,district") {
		t.Errorf("CSV header = %q", strings.SplitN(msg, "\n", 2)[0])
	}
}

func TestCmdMineAndExplainWithSavedPatterns(t *testing.T) {
	csv := writeExampleCSV(t)
	patterns := filepath.Join(t.TempDir(), "patterns.json")

	mineOut, err := captureStdout(t, func() error {
		return cmdMine([]string{
			"-data", csv, "-o", patterns,
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mineOut, "mined") || !strings.Contains(mineOut, "patterns") {
		t.Errorf("mine output = %q", mineOut)
	}
	if _, err := os.Stat(patterns); err != nil {
		t.Fatalf("patterns file missing: %v", err)
	}

	explainOut, err := captureStdout(t, func() error {
		return cmdExplain([]string{
			"-data", csv, "-patterns", patterns,
			"-groupby", "author,venue,year", "-tuple", "AX,SIGKDD,2007",
			"-dir", "low", "-k", "5", "-numeric", "year=4",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explainOut, "ICDE") {
		t.Errorf("explain output missing the counterbalance:\n%s", explainOut)
	}
}

func TestCmdExplainOnTheFlyWithSQLQuestion(t *testing.T) {
	csv := writeExampleCSV(t)
	out, err := captureStdout(t, func() error {
		return cmdExplain([]string{
			"-data", csv,
			"-query", "SELECT author, venue, year, count(*) FROM pub GROUP BY author, venue, year",
			"-tuple", "AX,SIGKDD,2007", "-dir", "low", "-k", "3",
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
			"-numeric", "year=4",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mined") || !strings.Contains(out, "ICDE") {
		t.Errorf("explain -query output:\n%s", out)
	}
}

func TestCmdExplainErrors(t *testing.T) {
	csv := writeExampleCSV(t)
	cases := [][]string{
		{},             // no data
		{"-data", csv}, // no question
		{"-data", csv, "-groupby", "author", "-tuple", "AX,extra"},                 // arity
		{"-data", csv, "-groupby", "author,venue,year", "-tuple", "NOBODY,X,1900"}, // not a result
		{"-data", csv, "-groupby", "author", "-tuple", "AX", "-dir", "sideways"},
		{"-data", csv, "-query", "SELECT broken", "-tuple", "AX"},
		{"-data", "/nonexistent.csv", "-groupby", "a", "-tuple", "x"},
		{"-data", csv, "-groupby", "author", "-tuple", "AX", "-numeric", "year"},
		{"-data", csv, "-groupby", "author", "-tuple", "AX", "-numeric", "year=zero"},
		{"-data", csv, "-patterns", "/nonexistent.json", "-groupby", "author", "-tuple", "AX"},
	}
	for i, args := range cases {
		if _, err := captureStdout(t, func() error { return cmdExplain(args) }); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestCmdBaseline(t *testing.T) {
	csv := writeExampleCSV(t)
	out, err := captureStdout(t, func() error {
		return cmdBaseline([]string{
			"-data", csv, "-groupby", "author,venue,year",
			"-tuple", "AX,SIGKDD,2007", "-dir", "low", "-k", "5",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "question:") {
		t.Errorf("baseline output:\n%s", out)
	}
}

func TestCmdQuery(t *testing.T) {
	csv := writeExampleCSV(t)
	out, err := captureStdout(t, func() error {
		return cmdQuery([]string{
			"-data", csv,
			"-q", "SELECT venue, count(*) AS n FROM pub GROUP BY venue ORDER BY venue",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"venue", "n", "ICDE", "SIGKDD", "VLDB", "(3 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdQueryCSVOutput(t *testing.T) {
	csv := writeExampleCSV(t)
	out, err := captureStdout(t, func() error {
		return cmdQuery([]string{
			"-data", csv, "-csv",
			"-q", "SELECT DISTINCT author FROM pub ORDER BY author",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "author\nAX\nAY\nAZ\n" {
		t.Errorf("csv output = %q", out)
	}
}

func TestCmdQueryErrors(t *testing.T) {
	csv := writeExampleCSV(t)
	cases := [][]string{
		{},
		{"-data", csv},
		{"-data", csv, "-q", "SELECT nope FROM pub"},
		{"-data", csv, "-q", "SELECT * FROM wrongtable"},
		{"-data", "/nonexistent.csv", "-q", "SELECT * FROM t"},
	}
	for i, args := range cases {
		if _, err := captureStdout(t, func() error { return cmdQuery(args) }); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCmdMineVariantsAndErrors(t *testing.T) {
	csv := writeExampleCSV(t)
	for _, miner := range []string{"arpmine", "sharegrp", "cube", "naive"} {
		if _, err := captureStdout(t, func() error {
			return cmdMine([]string{"-data", csv, "-miner", miner,
				"-theta", "0.3", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2", "-psi", "2"})
		}); err != nil {
			t.Errorf("miner %s: %v", miner, err)
		}
	}
	if _, err := captureStdout(t, func() error {
		return cmdMine([]string{"-data", csv, "-miner", "quantum"})
	}); err == nil {
		t.Error("unknown miner should error")
	}
	if _, err := captureStdout(t, func() error { return cmdMine(nil) }); err == nil {
		t.Error("missing -data should error")
	}
}

func TestParseMetricHelper(t *testing.T) {
	m, err := parseMetric("year=4,community=2")
	if err != nil || m == nil {
		t.Fatalf("parseMetric: %v", err)
	}
	if _, err := parseMetric("year"); err == nil {
		t.Error("missing = should error")
	}
	if _, err := parseMetric("year=-3"); err == nil {
		t.Error("negative scale should error")
	}
	if m, err := parseMetric(""); err != nil || m == nil {
		t.Error("empty spec should yield default metric")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if len(splitList("")) != 0 {
		t.Error("empty input should yield no entries")
	}
}

func TestCmdExplainJSONOutput(t *testing.T) {
	csv := writeExampleCSV(t)
	out, err := captureStdout(t, func() error {
		return cmdExplain([]string{
			"-data", csv, "-json",
			"-groupby", "author,venue,year", "-tuple", "AX,SIGKDD,2007",
			"-dir", "low", "-k", "2",
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
			"-numeric", "year=4",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Question     string `json:"question"`
		Explanations []struct {
			Score     float64 `json:"score"`
			Narration string  `json:"narration"`
		} `json:"explanations"`
	}
	// Skip the "mined N patterns" line printed before the JSON body.
	idx := strings.IndexByte(out, '{')
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	if err := json.Unmarshal([]byte(out[idx:]), &parsed); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(parsed.Explanations) != 2 || parsed.Explanations[0].Score <= 0 || parsed.Explanations[0].Narration == "" {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestCmdGeneralize(t *testing.T) {
	csv := writeExampleCSV(t)
	out, err := captureStdout(t, func() error {
		return cmdGeneralize([]string{
			"-data", csv,
			"-groupby", "author,venue,year", "-tuple", "AX,SIGKDD,2007",
			"-dir", "low", "-k", "3",
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "question:") {
		t.Errorf("generalize output:\n%s", out)
	}
	if _, err := captureStdout(t, func() error { return cmdGeneralize(nil) }); err == nil {
		t.Error("missing -data should error")
	}
}

func TestCmdIntervene(t *testing.T) {
	csv := writeExampleCSV(t)
	// Low question: prints the refusal, exits cleanly.
	out, err := captureStdout(t, func() error {
		return cmdIntervene([]string{
			"-data", csv,
			"-groupby", "author,venue,year", "-tuple", "AX,SIGKDD,2007", "-dir", "low",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cannot explain a LOW outcome") {
		t.Errorf("intervene low output:\n%s", out)
	}
	// High question: produces predicates or the nothing-to-explain note.
	out, err = captureStdout(t, func() error {
		return cmdIntervene([]string{
			"-data", csv,
			"-groupby", "author,venue,year", "-tuple", "AX,ICDE,2007", "-dir", "high",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "question:") {
		t.Errorf("intervene high output:\n%s", out)
	}
	if _, err := captureStdout(t, func() error { return cmdIntervene(nil) }); err == nil {
		t.Error("missing -data should error")
	}
}

// writeQuestionsJSONL materializes a question file with valid, invalid,
// and malformed lines to exercise the per-item error path.
func writeQuestionsJSONL(t *testing.T, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "questions.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdExplainBatch(t *testing.T) {
	csv := writeExampleCSV(t)
	questions := writeQuestionsJSONL(t, []string{
		`{"groupBy":["author","venue","year"],"tuple":["AX","SIGKDD","2007"],"dir":"low"}`,
		``, // blank lines are skipped
		`{"groupBy":["author","venue","year"],"tuple":["AX","ICDE","2007"],"dir":"high"}`,
		`{"groupBy":["author"],"tuple":["AX","extra"],"dir":"low"}`, // arity error
		`{not json`, // malformed line
	})
	out, err := captureStdout(t, func() error {
		return cmdExplainBatch([]string{
			"-data", csv, "-questions", questions, "-k", "3",
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
			"-numeric", "year=4",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2/4 questions answered") {
		t.Errorf("summary line missing:\n%s", out)
	}
	if !strings.Contains(out, "ICDE") {
		t.Errorf("batch output missing the counterbalance:\n%s", out)
	}
	if !strings.Contains(out, "[2] error:") || !strings.Contains(out, "[3] error: line 5") {
		t.Errorf("per-item errors missing:\n%s", out)
	}
}

func TestCmdExplainBatchJSON(t *testing.T) {
	csv := writeExampleCSV(t)
	questions := writeQuestionsJSONL(t, []string{
		`{"groupBy":["author","venue","year"],"tuple":["AX","SIGKDD","2007"],"dir":"low"}`,
		`{"groupBy":["author","venue","year"],"tuple":["AX","SIGKDD","2007"],"dir":"sideways"}`,
	})
	out, err := captureStdout(t, func() error {
		return cmdExplainBatch([]string{
			"-data", csv, "-questions", questions, "-k", "2", "-json",
			"-theta", "0.5", "-localsupp", "3", "-lambda", "0.3", "-globalsupp", "2",
			"-numeric", "year=4",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		Index        int      `json:"index"`
		Question     string   `json:"question"`
		Error        string   `json:"error"`
		Explanations []string `json:"explanations"`
		Narrations   []string `json:"narrations"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(parsed) != 2 {
		t.Fatalf("items = %d", len(parsed))
	}
	if len(parsed[0].Explanations) != 2 || parsed[0].Error != "" || parsed[0].Narrations[0] == "" {
		t.Errorf("item 0 = %+v", parsed[0])
	}
	if parsed[1].Error == "" || len(parsed[1].Explanations) != 0 {
		t.Errorf("item 1 should carry the bad-dir error: %+v", parsed[1])
	}
}

func TestCmdExplainBatchErrors(t *testing.T) {
	csv := writeExampleCSV(t)
	cases := [][]string{
		{},             // no data
		{"-data", csv}, // no questions file
		{"-data", csv, "-questions", "/nonexistent.jsonl"},
		{"-data", "/nonexistent.csv", "-questions", "/nonexistent.jsonl"},
		{"-data", csv, "-questions", csv, "-numeric", "year"}, // bad metric
		{"-data", csv, "-questions", csv, "-patterns", "/nonexistent.json"},
	}
	for i, args := range cases {
		if _, err := captureStdout(t, func() error { return cmdExplainBatch(args) }); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
