// Command capeshard fronts a sharded CAPE deployment: N shard
// capeservers each hold one hash partition of every table (by the
// shard-key attribute set), and this coordinator presents them as one
// /v1 API — scatter-gather explains merged with the engine's
// deterministic tie-break, keyed append routing with aggregate
// durability, global pattern admission, and load shedding under
// overload. See DESIGN.md §15 and the README "sharded deployment"
// quickstart.
//
// Usage:
//
//	capeshard -shards http://h1:8081,http://h2:8082 -key author,venue
//	          [-addr :8080] [-load name=path.csv ...]
//	          [-shard-timeout 60s] [-max-inflight n] [-max-queue n]
//
// The shard list order is the hash ring: keep it identical across
// coordinator restarts or routing will disagree with data placement.
// -load reads a CSV, partitions it by the key, and pushes one partition
// to each shard.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cape/internal/httpc"
	"cape/internal/server"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required; order is the hash ring)")
	key := flag.String("key", "", "comma-separated shard-key attributes (required)")
	shardTimeout := flag.Duration("shard-timeout", 60*time.Second, "per-shard request deadline")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent outgoing shard requests (0 = 4x shard count)")
	maxQueue := flag.Int("max-queue", 0, "explain admission limit before shedding 429 (0 = 256)")
	ansCache := flag.Int("anscache", 0,
		"coordinator answer-cache entries per pattern set (0 = default 4096, negative disables)")
	var loads loadFlags
	flag.Var(&loads, "load", "load and partition a table as name=path.csv (repeatable)")
	flag.Parse()

	shardURLs := splitNonEmpty(*shards)
	keyAttrs := splitNonEmpty(*key)
	if len(shardURLs) == 0 || len(keyAttrs) == 0 {
		log.Fatal("capeshard: -shards and -key are required")
	}
	coord, err := server.NewCoordinator(server.CoordConfig{
		Shards:          shardURLs,
		Key:             keyAttrs,
		ShardTimeout:    *shardTimeout,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		AnswerCacheSize: *ansCache,
		Client:          httpc.NewClient(len(shardURLs)),
	})
	if err != nil {
		log.Fatalf("capeshard: %v", err)
	}

	// -load goes through the coordinator's own handler so the partition
	// + push path is exactly what a client POST would get.
	for _, spec := range loads {
		eq := strings.IndexByte(spec, '=')
		if eq <= 0 {
			log.Fatalf("capeshard: bad -load %q (want name=path.csv)", spec)
		}
		name, path := spec[:eq], spec[eq+1:]
		csv, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("capeshard: loading %s: %v", path, err)
		}
		if err := loadViaHandler(coord, name, csv); err != nil {
			log.Fatalf("capeshard: loading %s: %v", path, err)
		}
		fmt.Printf("partitioned %s across %d shards by key %v\n", name, len(shardURLs), keyAttrs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: coord}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("capeshard coordinating %d shards on %s (key %v)\n", len(shardURLs), *addr, keyAttrs)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	fmt.Println("capeshard: bye")
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadViaHandler POSTs a CSV to the coordinator handler in-process.
func loadViaHandler(coord *server.Coordinator, name string, csv []byte) error {
	req, err := http.NewRequest(http.MethodPost, "/v1/tables?name="+name, bytes.NewReader(csv))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	rec := newRecorder()
	coord.ServeHTTP(rec, req)
	if rec.status != http.StatusCreated {
		return fmt.Errorf("status %d: %s", rec.status, strings.TrimSpace(rec.body.String()))
	}
	return nil
}

// recorder is a minimal in-process ResponseWriter (no httptest in main).
type recorder struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{h: make(http.Header), status: http.StatusOK} }

func (r *recorder) Header() http.Header { return r.h }
func (r *recorder) WriteHeader(s int)   { r.status = s }
func (r *recorder) Write(b []byte) (int, error) {
	return r.body.Write(b)
}

var _ io.Writer = (*recorder)(nil)
