package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/mining"
)

// benchBatchSeries is one measured strategy in BENCH_batch.json.
type benchBatchSeries struct {
	Strategy string `json:"strategy"`
	NsTotal  int64  `json:"nsTotal"`
	NsPerQ   int64  `json:"nsPerQuestion"`
}

// benchBatchReport is the schema of BENCH_batch.json.
type benchBatchReport struct {
	Dataset          string           `json:"dataset"`
	Rows             int              `json:"rows"`
	CPUs             int              `json:"cpus"`
	Patterns         int              `json:"patterns"`
	Questions        int              `json:"questions"`
	SequentialCold   benchBatchSeries `json:"sequentialCold"`
	SequentialWarm   benchBatchSeries `json:"sequentialWarm"`
	Batch            benchBatchSeries `json:"batch"`
	SpeedupVsCold    float64          `json:"speedupVsCold"`
	SpeedupVsWarm    float64          `json:"speedupVsWarm"`
	ResultsIdentical bool             `json:"resultsIdentical"`
}

// runBenchBatch times a 16-question DBLP batch three ways: N sequential
// cold GenOpt calls (what N independent /v1/explain-equivalent requests
// cost without any sharing), N sequential calls through one warm
// Explainer (PR 1's cache sharing but no cross-question planning), and
// one ExplainBatch call (shared relevance scan, shared cache, question
// fan-out). Each strategy takes the best of three runs, the batch
// output is verified element-wise identical to the sequential answers,
// and the numbers land in BENCH_batch.json.
func runBenchBatch(full bool) error {
	rows := 20000
	numQ := 16
	if full {
		rows = 100000
	}
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 3})
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return err
	}
	questions, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, numQ, 99)
	if err != nil {
		return err
	}
	opt := explain.Options{K: 10, Metric: metric, Parallelism: runtime.NumCPU()}
	report := benchBatchReport{
		Dataset:   "dblp",
		Rows:      rows,
		CPUs:      runtime.NumCPU(),
		Patterns:  len(mined.Patterns),
		Questions: len(questions),
	}
	fmt.Printf("DBLP, D=%d, %d patterns, %d questions, GOMAXPROCS=%d\n\n",
		rows, len(mined.Patterns), len(questions), runtime.GOMAXPROCS(0))

	const reps = 3
	best := func(run func() error) (time.Duration, error) {
		bestD := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if d := time.Since(start); r == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD, nil
	}
	series := func(strategy string, d time.Duration) benchBatchSeries {
		fmt.Printf("%-18s  %12s total  %12s per question\n", strategy,
			d.Round(time.Millisecond),
			(d / time.Duration(len(questions))).Round(100*time.Microsecond))
		return benchBatchSeries{
			Strategy: strategy,
			NsTotal:  d.Nanoseconds(),
			NsPerQ:   d.Nanoseconds() / int64(len(questions)),
		}
	}

	// Reference answers, and the sequential-cold timing: every question
	// pays its own relevance scan and group-by cache from scratch.
	var want [][]explain.Explanation
	dCold, err := best(func() error {
		want = want[:0]
		for _, q := range questions {
			expls, _, err := explain.GenOpt(q, tab, mined.Patterns, opt)
			if err != nil {
				return err
			}
			want = append(want, expls)
		}
		return nil
	})
	if err != nil {
		return err
	}
	report.SequentialCold = series("sequential-cold", dCold)

	// Sequential-warm: one Explainer shared across the loop (the PR 1
	// server path) — cache sharing without batch planning. A fresh
	// Explainer per rep keeps the first rep from pre-warming the rest.
	dWarm, err := best(func() error {
		ex := explain.NewExplainer(tab, mined.Patterns, opt)
		for _, q := range questions {
			if _, _, err := ex.Explain(q); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	report.SequentialWarm = series("sequential-warm", dWarm)

	// The batch call, cold each rep like the cold loop it replaces.
	var items []explain.BatchItem
	dBatch, err := best(func() error {
		items = explain.GenerateBatch(questions, tab, mined.Patterns, opt)
		for i, it := range items {
			if it.Err != nil {
				return fmt.Errorf("batch question %d: %w", i, it.Err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	report.Batch = series("batch", dBatch)

	// The speedup only counts if the answers are the same answers.
	report.ResultsIdentical = true
	for i := range questions {
		if !sameExplanations(want[i], items[i].Explanations) {
			report.ResultsIdentical = false
			return fmt.Errorf("batch diverged from sequential on question %d", i)
		}
	}

	report.SpeedupVsCold = float64(dCold) / float64(dBatch)
	report.SpeedupVsWarm = float64(dWarm) / float64(dBatch)
	fmt.Printf("\nbatch speedup: %.2fx vs sequential-cold, %.2fx vs sequential-warm (results identical)\n",
		report.SpeedupVsCold, report.SpeedupVsWarm)

	f, err := os.Create("BENCH_batch.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_batch.json")
	return nil
}

// sameExplanations compares two ranked lists field by field.
func sameExplanations(a, b []explain.Explanation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || a[i].Distance != b[i].Distance ||
			a[i].Deviation != b[i].Deviation || !a[i].Tuple.Equal(b[i].Tuple) ||
			a[i].Relevant.Key() != b[i].Relevant.Key() || a[i].Refined.Key() != b[i].Refined.Key() {
			return false
		}
	}
	return true
}
