package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/mining"
)

// benchExplainSeries is one worker-count measurement in BENCH_explain.json.
type benchExplainSeries struct {
	Workers int   `json:"workers"`
	NsTotal int64 `json:"nsTotal"`
	NsPerQ  int64 `json:"nsPerQuestion"`
}

// benchExplainReport is the schema of BENCH_explain.json.
type benchExplainReport struct {
	Dataset       string               `json:"dataset"`
	Rows          int                  `json:"rows"`
	CPUs          int                  `json:"cpus"`
	Patterns      int                  `json:"patterns"`
	Questions     int                  `json:"questions"`
	Cold          []benchExplainSeries `json:"cold"`
	WarmExplainer benchExplainSeries   `json:"warmExplainer"`
}

// runBenchExplain times GenOpt across worker counts on a fixed DBLP
// workload and writes the numbers to BENCH_explain.json. The cold rows
// rebuild the group-by cache per question (the GenOpt path); the warm
// row reuses one Explainer so every question after the first hits the
// shared sharded cache. On a single-vCPU host the worker sweep mostly
// measures coordination overhead; the interesting deltas need real
// cores.
func runBenchExplain(full bool) error {
	rows := 20000
	numQ := 8
	if full {
		rows = 100000
		numQ = 12
	}
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 3})
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return err
	}
	questions, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, numQ, 99)
	if err != nil {
		return err
	}
	report := benchExplainReport{
		Dataset:   "dblp",
		Rows:      rows,
		CPUs:      runtime.NumCPU(),
		Patterns:  len(mined.Patterns),
		Questions: len(questions),
	}
	fmt.Printf("DBLP, D=%d, %d patterns, %d questions, GOMAXPROCS=%d\n\n",
		rows, len(mined.Patterns), len(questions), runtime.GOMAXPROCS(0))

	fmt.Printf("%8s  %12s  %12s\n", "workers", "total", "per question")
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		for _, q := range questions {
			if _, _, err := explain.GenOpt(q, tab, mined.Patterns,
				explain.Options{K: 10, Metric: metric, Parallelism: w}); err != nil {
				return err
			}
		}
		total := time.Since(start)
		report.Cold = append(report.Cold, benchExplainSeries{
			Workers: w,
			NsTotal: total.Nanoseconds(),
			NsPerQ:  total.Nanoseconds() / int64(len(questions)),
		})
		fmt.Printf("%8d  %12s  %12s\n", w,
			total.Round(time.Millisecond),
			(total / time.Duration(len(questions))).Round(100*time.Microsecond))
	}

	// Warm path: one Explainer shared across all questions, so repeated
	// group-bys are computed once and singleflight absorbs duplicates.
	ex := explain.NewExplainer(tab, mined.Patterns,
		explain.Options{K: 10, Metric: metric, Parallelism: runtime.NumCPU()})
	start := time.Now()
	for _, q := range questions {
		if _, _, err := ex.Explain(q); err != nil {
			return err
		}
	}
	total := time.Since(start)
	report.WarmExplainer = benchExplainSeries{
		Workers: runtime.NumCPU(),
		NsTotal: total.Nanoseconds(),
		NsPerQ:  total.Nanoseconds() / int64(len(questions)),
	}
	fmt.Printf("\nwarm Explainer (%d workers, %d cached groupings): %s total, %s per question\n",
		runtime.NumCPU(), ex.CachedGroupings(),
		total.Round(time.Millisecond),
		(total / time.Duration(len(questions))).Round(100*time.Microsecond))

	f, err := os.Create("BENCH_explain.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_explain.json")
	return nil
}
