// Command capebench regenerates every table and figure of the CAPE
// paper's evaluation (Section 5 and Appendices A–B) on the synthetic
// datasets this repository ships. Each subcommand prints the same rows or
// series the paper reports; absolute numbers differ (the substrate is an
// in-memory Go engine, not Python-on-PostgreSQL on the authors' testbed)
// but the comparative shape — which variant wins, linearity in D, growth
// in A, where precision falls off — is what the harness reproduces.
//
// Usage:
//
//	capebench <experiment> [-full] [-smoke] [-parallel n] [-cpuprofile f] [-memprofile f]
//
// Experiments: fig3a fig3b fig3c fig4 fig5 fig6a fig6b fig6c fig7
// table3 table4 table5 table6 table7 userstudy benchexplain benchmine
// benchbatch benchengine benchincr benchscale benchload benchserve all
//
// -full runs the larger input sizes (slower; closer to the paper's
// ranges).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
)

// experiments maps subcommand names to runners. Each runner prints its
// own header and rows.
var experiments = map[string]struct {
	run  func(full bool) error
	desc string
}{
	"fig3a":        {runFig3a, "mining runtime vs attribute count (Crime): NAIVE / CUBE / SHARE-GRP / ARP-MINE"},
	"fig3b":        {runFig3b, "mining runtime vs row count (Crime)"},
	"fig3c":        {runFig3c, "mining runtime vs row count (DBLP)"},
	"fig4":         {runFig4, "mining subtask breakdown: regression vs query vs other"},
	"fig5":         {runFig5, "ARP-MINE with and without FD optimizations (Crime, 9 attrs)"},
	"fig6a":        {runFig6a, "explanation runtime vs number of local patterns (DBLP), naive vs opt"},
	"fig6b":        {runFig6b, "explanation runtime vs number of local patterns (Crime)"},
	"fig6c":        {runFig6c, "explanation runtime vs question group-by size (Crime)"},
	"fig7":         {runFig7, "precision vs (θ, λ, Δ) on injected ground-truth counterbalances"},
	"table3":       {runTable3, "top-10 explanations for the running-example question (low)"},
	"table4":       {runTable4, "top-5 CAPE explanations, DBLP high question"},
	"table5":       {runTable5, "top-5 CAPE explanations, Crime low question"},
	"table6":       {runTable6, "top-5 baseline explanations, DBLP high question"},
	"table7":       {runTable7, "top-5 baseline explanations, Crime low question"},
	"userstudy":    {runUserStudy, "machine-checkable part of the Appendix-B user study"},
	"benchexplain": {runBenchExplain, "parallel explanation generation sweep; writes BENCH_explain.json"},
	"benchmine":    {runBenchMine, "offline mining fast-path benchmark vs recorded baseline; writes BENCH_mine.json"},
	"benchbatch":   {runBenchBatch, "batch-of-N vs N sequential explanation calls; writes BENCH_batch.json"},
	"benchengine":  {runBenchEngine, "columnar engine kernels + end-to-end vs recorded baseline; writes BENCH_engine.json"},
	"benchincr":    {runBenchIncr, "incremental pattern maintenance vs full re-mine on append; writes BENCH_incr.json"},
	"benchscale":   {runBenchScale, "Figure-4 miner comparison at 250K-6.5M rows, mmap'd segments vs dense table; writes BENCH_scale.json"},
	"benchload":    {runBenchLoad, "open-loop load on 1/2/4/8-shard deployments: goodput, latency percentiles, shed rate; writes BENCH_load.json"},
	"benchserve":   {runBenchServe, "serve-path acceleration: relevance-index prepare scaling + answer-cache cold/warm latency; writes BENCH_serve.json"},
}

// smokeMode (-smoke) restricts an experiment to its correctness
// assertions: benchengine runs only its columnar-vs-row identity pass,
// benchincr only its maintained-vs-remined identity pass, and
// benchscale only its segment-vs-dense identity pass at a small size,
// with no timing and no JSON output, so CI can gate on them cheaply.
var smokeMode bool

// zipfFlag (-zipf) switches benchload's open-loop question stream from
// round-robin over the pool to a Zipf-skewed draw (s=1.2), the shape a
// production question mix actually has: a few hot questions dominate,
// which is the regime the coordinator answer cache serves. The run
// reports per-shard-count cache hit rates from the coordinator.
var zipfFlag bool

// parallelFlag (-parallel) is the worker budget benchmarks hand to
// mining.Options.Parallelism. benchmine and benchincr run at exactly
// this width; benchscale sweeps the segment pass over {1, 2, 4, 8}
// capped here, recording the scaling curve. 1 (the default) keeps
// every benchmark sequential and the recorded baselines comparable.
var parallelFlag int

func usage() {
	fmt.Fprintln(os.Stderr, "usage: capebench <experiment> [-full]")
	fmt.Fprintln(os.Stderr, "\nexperiments:")
	names := make([]string, 0, len(experiments))
	for n := range experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", n, experiments[n].desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run everything")
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	full := fs.Bool("full", false, "run larger (slower) input sizes")
	fs.BoolVar(&smokeMode, "smoke", false, "identity assertions only, no timing (benchengine, benchincr, benchscale, benchload, benchserve)")
	fs.BoolVar(&zipfFlag, "zipf", false, "benchload: draw questions Zipf-skewed instead of round-robin and report cache hit rates")
	fs.IntVar(&parallelFlag, "parallel", 1, "mining worker budget; benchscale sweeps worker counts up to this (benchmine, benchincr, benchscale)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capebench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "capebench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "capebench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "capebench: %v\n", err)
			}
		}()
	}

	run := func(n string) {
		e, ok := experiments[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "capebench: unknown experiment %q\n\n", n)
			usage()
			os.Exit(2)
		}
		fmt.Printf("==> %s: %s\n\n", n, e.desc)
		if err := e.run(*full); err != nil {
			fmt.Fprintf(os.Stderr, "capebench %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if name == "all" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			run(n)
		}
		return
	}
	run(name)
}
