package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
)

// benchMineStats is one benchmark measurement in BENCH_mine.json.
type benchMineStats struct {
	NsPerOp     int64 `json:"nsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	AllocsPerOp int64 `json:"allocsPerOp"`
}

// benchMineBreakdown is the Figure-4 subtask split of one ARPMine run.
type benchMineBreakdown struct {
	QueryNs      int64 `json:"queryNs"`
	RegressionNs int64 `json:"regressionNs"`
	OtherNs      int64 `json:"otherNs"`
	TotalNs      int64 `json:"totalNs"`
	Patterns     int   `json:"patterns"`
	Candidates   int   `json:"candidates"`
}

// benchMineSide holds the measurements of one side (baseline or current).
type benchMineSide struct {
	ARPMine   benchMineStats     `json:"arpmine"`
	FitShared benchMineStats     `json:"fitShared"`
	Breakdown benchMineBreakdown `json:"breakdown"`
}

// benchMineReport is the schema of BENCH_mine.json.
type benchMineReport struct {
	Dataset        string        `json:"dataset"`
	Rows           int           `json:"rows"`
	Psi            int           `json:"psi"`
	CPUs           int           `json:"cpus"`
	Parallelism    int           `json:"parallelism"`
	BaselineCommit string        `json:"baselineCommit"`
	Baseline       benchMineSide `json:"baseline"`
	Current        benchMineSide `json:"current"`
	Speedup        float64       `json:"speedup"`
	AllocRatio     float64       `json:"allocRatio"`
}

// benchMineBaseline is the pre-fast-path measurement of the identical
// workload (DBLP 5000 rows, seed 1, ψ=3, Count+Sum × Const+Lin), taken
// at commit 428a2f4 by running the same benchmarks against that tree on
// the same host, median of 5. The Figure-4 breakdown comes from a single
// timed ARPMine run of that tree.
var benchMineBaseline = benchMineSide{
	ARPMine:   benchMineStats{NsPerOp: 11722424, BytesPerOp: 3393212, AllocsPerOp: 16787},
	FitShared: benchMineStats{NsPerOp: 341589, BytesPerOp: 187408, AllocsPerOp: 4513},
	Breakdown: benchMineBreakdown{
		QueryNs:      9496734,
		RegressionNs: 273433,
		OtherNs:      1930885,
		TotalNs:      11701052,
		Patterns:     2,
		Candidates:   28,
	},
}

// runBenchMine measures the offline-mining fast path on the fixed
// BENCH_mine workload and writes BENCH_mine.json comparing against the
// recorded pre-change baseline. The workload is pinned (the baseline
// numbers are only comparable on the same input), so -full is ignored.
func runBenchMine(full bool) error {
	_ = full
	const rows, psi = 5000, 3
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 1})
	opt := miningOpts([]string{"author", "year", "venue"}, psi)
	opt.Models = []regress.ModelType{regress.Const, regress.Lin}
	// -parallel widens the miner; the recorded baseline is sequential, so
	// the speedup field compares like-for-like only at the default.
	opt.Parallelism = parallelFlag

	report := benchMineReport{
		Dataset:        "dblp",
		Rows:           rows,
		Psi:            psi,
		CPUs:           runtime.NumCPU(),
		Parallelism:    parallelFlag,
		BaselineCommit: "428a2f4",
		Baseline:       benchMineBaseline,
	}

	// End-to-end miner benchmark.
	arp := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mining.ARPMine(tab, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Patterns) == 0 {
				b.Fatal("benchmark workload mined no patterns")
			}
		}
	})
	report.Current.ARPMine = benchMineStats{
		NsPerOp:     arp.NsPerOp(),
		BytesPerOp:  arp.AllocedBytesPerOp(),
		AllocsPerOp: arp.AllocsPerOp(),
	}

	// Shared-fitter benchmark: one (F, V) split of the grouped result.
	// DBLP has no numeric column outside the grouping attributes, so the
	// requested Sum contributes no aggregate expression and the candidates
	// are count(*) × {Const, Lin}, exactly as in the end-to-end miner.
	g := []string{"author", "year", "venue"}
	aggs := []engine.AggSpec{{Func: engine.Count}}
	grouped, err := tab.GroupBy(g, aggs)
	if err != nil {
		return err
	}
	f, v := []string{"author", "venue"}, []string{"year"}
	sorted, err := grouped.Sorted(append(append([]string{}, f...), v...))
	if err != nil {
		return err
	}
	fit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pattern.FitShared(f, v, aggs, opt.Models, sorted, opt.Thresholds, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.Current.FitShared = benchMineStats{
		NsPerOp:     fit.NsPerOp(),
		BytesPerOp:  fit.AllocedBytesPerOp(),
		AllocsPerOp: fit.AllocsPerOp(),
	}

	// Figure-4 breakdown of one timed run.
	start := time.Now()
	res, err := mining.ARPMine(tab, opt)
	if err != nil {
		return err
	}
	total := time.Since(start)
	report.Current.Breakdown = benchMineBreakdown{
		QueryNs:      res.Timers.Query.Nanoseconds(),
		RegressionNs: res.Timers.Regression.Nanoseconds(),
		OtherNs:      total.Nanoseconds() - res.Timers.Query.Nanoseconds() - res.Timers.Regression.Nanoseconds(),
		TotalNs:      total.Nanoseconds(),
		Patterns:     len(res.Patterns),
		Candidates:   res.Candidates,
	}

	report.Speedup = float64(report.Baseline.ARPMine.NsPerOp) / float64(report.Current.ARPMine.NsPerOp)
	report.AllocRatio = float64(report.Baseline.ARPMine.AllocsPerOp) / float64(report.Current.ARPMine.AllocsPerOp)

	fmt.Printf("DBLP, D=%d, ψ=%d, GOMAXPROCS=%d\n\n", rows, psi, runtime.GOMAXPROCS(0))
	fmt.Printf("%-22s %14s %14s\n", "", "baseline", "current")
	fmt.Printf("%-22s %14s %14s\n", "ARPMine ns/op",
		fmtNs(report.Baseline.ARPMine.NsPerOp), fmtNs(report.Current.ARPMine.NsPerOp))
	fmt.Printf("%-22s %14d %14d\n", "ARPMine allocs/op",
		report.Baseline.ARPMine.AllocsPerOp, report.Current.ARPMine.AllocsPerOp)
	fmt.Printf("%-22s %14s %14s\n", "FitShared ns/op",
		fmtNs(report.Baseline.FitShared.NsPerOp), fmtNs(report.Current.FitShared.NsPerOp))
	fmt.Printf("%-22s %14s %14s\n", "query time",
		fmtNs(report.Baseline.Breakdown.QueryNs), fmtNs(report.Current.Breakdown.QueryNs))
	fmt.Printf("%-22s %14s %14s\n", "regression time",
		fmtNs(report.Baseline.Breakdown.RegressionNs), fmtNs(report.Current.Breakdown.RegressionNs))
	fmt.Printf("%-22s %14s %14s\n", "other time",
		fmtNs(report.Baseline.Breakdown.OtherNs), fmtNs(report.Current.Breakdown.OtherNs))
	fmt.Printf("%-22s %14d %14d\n", "patterns",
		report.Baseline.Breakdown.Patterns, report.Current.Breakdown.Patterns)
	fmt.Printf("%-22s %14d %14d\n", "candidates",
		report.Baseline.Breakdown.Candidates, report.Current.Breakdown.Candidates)
	fmt.Printf("\nspeedup %.2fx, allocs %.2fx fewer\n", report.Speedup, report.AllocRatio)

	if report.Current.Breakdown.Patterns != report.Baseline.Breakdown.Patterns ||
		report.Current.Breakdown.Candidates != report.Baseline.Breakdown.Candidates {
		return fmt.Errorf("fast path changed mining results: %d patterns / %d candidates, baseline %d / %d",
			report.Current.Breakdown.Patterns, report.Current.Breakdown.Candidates,
			report.Baseline.Breakdown.Patterns, report.Baseline.Breakdown.Candidates)
	}

	out, err := os.Create("BENCH_mine.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_mine.json")
	return nil
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
