package main

import (
	"fmt"
	"time"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
)

// paperThresholds are the mining thresholds of Section 5.1, with the
// support thresholds scaled to the smaller synthetic datasets (the paper
// used δ = Δ = 15 on millions of rows).
func paperThresholds() pattern.Thresholds {
	return pattern.Thresholds{Theta: 0.5, LocalSupport: 5, Lambda: 0.5, GlobalSupport: 5}
}

func miningOpts(attrs []string, psi int) mining.Options {
	return mining.Options{
		MaxPatternSize: psi,
		Attributes:     attrs,
		Thresholds:     paperThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count, engine.Sum},
	}
}

type minerFunc func(engine.Relation, mining.Options) (*mining.Result, error)

var miners = []struct {
	name string
	run  minerFunc
}{
	{"NAIVE", mining.Naive},
	{"CUBE", mining.CubeMine},
	{"SHARE-GRP", mining.ShareGrp},
	{"ARP-MINE", mining.ARPMine},
}

func timeMiner(run minerFunc, tab engine.Relation, opt mining.Options) (time.Duration, *mining.Result, error) {
	start := time.Now()
	res, err := run(tab, opt)
	return time.Since(start), res, err
}

// runFig3a: mining runtime vs attribute count on Crime, ψ=4. NAIVE is
// only run at the smallest sizes — as in the paper, where its A=7 data
// point (18000 s) was omitted from the plot.
func runFig3a(full bool) error {
	attrCounts := []int{4, 5, 6, 7, 8}
	naiveMax := 4
	rows := 5000
	if full {
		attrCounts = []int{4, 5, 6, 7, 8, 9, 10, 11}
		naiveMax = 5
		rows = 10000
	}
	fmt.Printf("Crime, D=%d, ψ=4, θ=0.5, λ=0.5, δ=5, Δ=5\n", rows)
	fmt.Printf("%3s  %12s %12s %12s %12s  %9s\n", "A", "NAIVE", "CUBE", "SHARE-GRP", "ARP-MINE", "patterns")
	for _, a := range attrCounts {
		tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: rows, Seed: 1, NumAttrs: a})
		opt := miningOpts(tab.Schema().Names(), 4)
		fmt.Printf("%3d", a)
		var patterns int
		for _, m := range miners {
			if m.name == "NAIVE" && a > naiveMax {
				fmt.Printf("  %12s", "(omitted)")
				continue
			}
			d, res, err := timeMiner(m.run, tab, opt)
			if err != nil {
				return err
			}
			patterns = len(res.Patterns)
			fmt.Printf("  %12s", d.Round(time.Millisecond))
		}
		fmt.Printf("  %9d\n", patterns)
	}
	return nil
}

// runFig3b: mining runtime vs row count on Crime, A=7.
func runFig3b(full bool) error {
	sizes := []int{5000, 10000, 20000, 50000}
	if full {
		sizes = []int{10000, 25000, 50000, 100000, 200000}
	}
	fmt.Println("Crime, A=7, ψ=4 (NAIVE omitted as in the paper)")
	fmt.Printf("%8s  %12s %12s %12s\n", "D", "CUBE", "SHARE-GRP", "ARP-MINE")
	for _, d := range sizes {
		tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: d, Seed: 1, NumAttrs: 7})
		opt := miningOpts(tab.Schema().Names(), 4)
		fmt.Printf("%8d", d)
		for _, m := range miners[1:] {
			dur, _, err := timeMiner(m.run, tab, opt)
			if err != nil {
				return err
			}
			fmt.Printf("  %12s", dur.Round(time.Millisecond))
		}
		fmt.Println()
	}
	return nil
}

// runFig3c: mining runtime vs row count on DBLP, A=4.
func runFig3c(full bool) error {
	sizes := []int{5000, 10000, 20000, 50000}
	if full {
		sizes = []int{10000, 25000, 50000, 100000, 200000}
	}
	fmt.Println("DBLP, A=4 (author, pubid, year, venue), ψ=4")
	fmt.Printf("%8s  %12s %12s %12s\n", "D", "CUBE", "SHARE-GRP", "ARP-MINE")
	for _, d := range sizes {
		tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: d, Seed: 1})
		// pubid is unique per row; mining over it is meaningless but the
		// paper's A=4 includes all columns, so we do too.
		opt := miningOpts([]string{"author", "year", "venue"}, 3)
		fmt.Printf("%8d", d)
		for _, m := range miners[1:] {
			dur, _, err := timeMiner(m.run, tab, opt)
			if err != nil {
				return err
			}
			fmt.Printf("  %12s", dur.Round(time.Millisecond))
		}
		fmt.Println()
	}
	return nil
}

// runFig4: per-subtask breakdown normalized to the slowest variant
// (CUBE), as in the paper's stacked-bar figure.
func runFig4(full bool) error {
	attrCounts := []int{4, 6, 8}
	rows := 5000
	if full {
		attrCounts = []int{4, 6, 8, 10, 11}
		rows = 10000
	}
	fmt.Printf("Crime, D=%d. Shares of total runtime, normalized to CUBE = 100%%\n", rows)
	fmt.Printf("%3s  %-10s %10s %10s %10s %10s\n", "A", "variant", "regress", "query", "other", "total")
	for _, a := range attrCounts {
		tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: rows, Seed: 1, NumAttrs: a})
		opt := miningOpts(tab.Schema().Names(), 4)
		type row struct {
			name  string
			t     pattern.Timers
			total time.Duration
		}
		var rowsOut []row
		var cubeTotal time.Duration
		for _, m := range miners[1:] { // ARP-MINE, SHARE-GRP, CUBE
			dur, res, err := timeMiner(m.run, tab, opt)
			if err != nil {
				return err
			}
			tm := res.Timers
			tm.Other = dur - tm.Query - tm.Regression
			if tm.Other < 0 {
				tm.Other = 0
			}
			rowsOut = append(rowsOut, row{m.name, tm, dur})
			if m.name == "CUBE" {
				cubeTotal = dur
			}
		}
		for _, r := range rowsOut {
			pct := func(d time.Duration) float64 {
				return 100 * float64(d) / float64(cubeTotal)
			}
			fmt.Printf("%3d  %-10s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
				a, r.name, pct(r.t.Regression), pct(r.t.Query), pct(r.t.Other), pct(r.total))
		}
	}
	return nil
}

// runFig5: ARP-MINE with FD optimizations on vs off, Crime with 9+
// attributes (the FD-rich configuration).
func runFig5(full bool) error {
	sizes := []int{5000, 10000, 20000}
	if full {
		sizes = []int{10000, 25000, 50000, 100000}
	}
	fmt.Println("Crime, A=10 (block/district/beat/ward FDs present), ψ=3")
	fmt.Printf("%8s  %12s %12s  %9s %9s\n", "D", "FDs off", "FDs on", "skipped", "FDs found")
	for _, d := range sizes {
		tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: d, Seed: 1, NumAttrs: 10})
		opt := miningOpts(tab.Schema().Names(), 3)
		durOff, _, err := timeMiner(mining.ARPMine, tab, opt)
		if err != nil {
			return err
		}
		opt.UseFDs = true
		durOn, res, err := timeMiner(mining.ARPMine, tab, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %12s %12s  %9d %9d\n",
			d, durOff.Round(time.Millisecond), durOn.Round(time.Millisecond),
			res.SkippedByFD, res.FDs.Len())
	}
	return nil
}
