package main

import (
	"fmt"

	"cape/internal/baseline"
	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// runTable3: the running example of Tables 2–3 — top-10 explanations for
// "why is AX's SIGKDD 2007 publication count low?".
func runTable3(bool) error {
	tab := dataset.RunningExample()
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Thresholds:     pattern.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return err
	}
	q := explain.UserQuestion{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2007)},
		AggValue: value.NewInt(1),
		Dir:      explain.Low,
	}
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	expls, _, err := explain.Generate(q, tab, mined.Patterns, explain.Options{K: 10, Metric: metric})
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	printExplanations(expls)
	return nil
}

// dblpScenario mines the DBLP data and locates the strongest natural
// outlier of the pattern [author, venue] : year ~Const~> count(*) in the
// given direction, returning the question plus everything needed to
// explain it.
func dblpScenario(dir explain.Direction) (*engine.Table, []*pattern.Mined, explain.UserQuestion, *distance.Metric, error) {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 20000, Seed: 2019})
	qAttrs := []string{"author", "venue", "year"}
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     qAttrs,
		Thresholds:     pattern.Thresholds{Theta: 0.2, LocalSupport: 4, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return nil, nil, explain.UserQuestion{}, nil, err
	}
	q, err := naturalOutlierQuestion(tab, mined.Patterns, qAttrs,
		"author,venue|year|count(*)|Const", []string{"author", "venue"}, dir)
	if err != nil {
		return nil, nil, explain.UserQuestion{}, nil, err
	}
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	return tab, mined.Patterns, q, metric, nil
}

// crimeScenario is the Crime analog over [community, type] : year.
func crimeScenario(dir explain.Direction) (*engine.Table, []*pattern.Mined, explain.UserQuestion, *distance.Metric, error) {
	tab := dataset.GenerateCrime(dataset.CrimeConfig{
		Rows: 20000, Seed: 2019, NumAttrs: 5, NumTypes: 8, NumCommunities: 15,
	})
	qAttrs := []string{"type", "community", "year"}
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     qAttrs,
		Thresholds:     pattern.Thresholds{Theta: 0.2, LocalSupport: 4, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return nil, nil, explain.UserQuestion{}, nil, err
	}
	q, err := naturalOutlierQuestion(tab, mined.Patterns, qAttrs,
		"community,type|year|count(*)|Const", []string{"community", "type"}, dir)
	if err != nil {
		return nil, nil, explain.UserQuestion{}, nil, err
	}
	metric := distance.NewMetric().
		SetFunc("year", distance.Numeric{Scale: 3}).
		SetFunc("community", distance.Numeric{Scale: 2})
	return tab, mined.Patterns, q, metric, nil
}

// naturalOutlierQuestion scans the local models of the named pattern for
// the result tuple deviating most strongly in the asked direction — the
// kind of organic outlier the paper's qualitative tables discuss.
func naturalOutlierQuestion(tab *engine.Table, patterns []*pattern.Mined, qAttrs []string,
	patternKey string, fragAttrs []string, dir explain.Direction) (explain.UserQuestion, error) {

	var target *pattern.Mined
	for _, p := range patterns {
		if p.Pattern.Key() == patternKey {
			target = p
			break
		}
	}
	if target == nil {
		return explain.UserQuestion{}, fmt.Errorf("pattern %q not mined", patternKey)
	}
	agg := engine.AggSpec{Func: engine.Count}
	grouped, err := tab.GroupBy(qAttrs, []engine.AggSpec{agg})
	if err != nil {
		return explain.UserQuestion{}, err
	}
	fragIdx, err := grouped.Schema().Indices(fragAttrs)
	if err != nil {
		return explain.UserQuestion{}, err
	}
	aggIdx := len(qAttrs)

	var best value.Tuple
	var bestDev float64
	frag := make(value.Tuple, len(fragIdx))
	for _, row := range grouped.Rows() {
		for i, ci := range fragIdx {
			frag[i] = row[ci]
		}
		lm, ok := target.Local(frag)
		if !ok {
			continue
		}
		y, _ := row[aggIdx].AsFloat()
		dev := y - lm.Model.Predict(nil)
		better := (dir == explain.High && dev > bestDev) ||
			(dir == explain.Low && dev < bestDev)
		if better {
			bestDev = dev
			best = row.Clone()
		}
	}
	if best == nil {
		return explain.UserQuestion{}, fmt.Errorf("no outlier found for %q", patternKey)
	}
	return explain.QuestionFromRow(qAttrs, agg, best, dir)
}

func printExplanations(expls []explain.Explanation) {
	fmt.Printf("%4s  %s\n", "rank", "explanation")
	for i, e := range expls {
		fmt.Printf("%4d  %s\n", i+1, e)
	}
}

func printBaseline(expls []baseline.Explanation) {
	fmt.Printf("%4s  %s\n", "rank", "explanation")
	for i, e := range expls {
		fmt.Printf("%4d  %s\n", i+1, e)
	}
}

// runTable4: CAPE top-5 for the DBLP "why high?" question.
func runTable4(bool) error {
	tab, patterns, q, metric, err := dblpScenario(explain.High)
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	expls, _, err := explain.Generate(q, tab, patterns, explain.Options{K: 5, Metric: metric})
	if err != nil {
		return err
	}
	printExplanations(expls)
	return nil
}

// runTable5: CAPE top-5 for the Crime "why low?" question.
func runTable5(bool) error {
	tab, patterns, q, metric, err := crimeScenario(explain.Low)
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	expls, _, err := explain.Generate(q, tab, patterns, explain.Options{K: 5, Metric: metric})
	if err != nil {
		return err
	}
	printExplanations(expls)
	return nil
}

// runTable6: baseline top-5 for the same DBLP question as Table 4.
func runTable6(bool) error {
	tab, _, q, metric, err := dblpScenario(explain.High)
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	expls, err := baseline.Explain(q, tab, baseline.Options{K: 5, Metric: metric})
	if err != nil {
		return err
	}
	printBaseline(expls)
	return nil
}

// runTable7: baseline top-5 for the same Crime question as Table 5.
func runTable7(bool) error {
	tab, _, q, metric, err := crimeScenario(explain.Low)
	if err != nil {
		return err
	}
	fmt.Printf("question: %s\n\n", q)
	expls, err := baseline.Explain(q, tab, baseline.Options{K: 5, Metric: metric})
	if err != nil {
		return err
	}
	printBaseline(expls)
	return nil
}
