package main

import (
	"os"
	"testing"
)

// TestMain silences the experiment runners' stdout during tests.
func TestMain(m *testing.M) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stdout = null
	}
	os.Exit(m.Run())
}

// TestFastExperimentsRun smoke-tests every experiment that completes in a
// few seconds at default sizes; the timing-sweep experiments are covered
// by the bench targets and by `capebench all`.
func TestFastExperimentsRun(t *testing.T) {
	fast := []string{"table3", "table4", "table5", "table6", "table7", "fig3c", "userstudy"}
	for _, name := range fast {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := experiments[name].run(false); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

func TestSlowExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps skipped in -short mode")
	}
	slow := []string{"fig6a", "fig6b", "fig7"}
	for _, name := range slow {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := experiments[name].run(false); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// TestBenchEngineSmoke runs benchengine's identity pass (the CI smoke
// configuration): every columnar kernel and both pipelines must match
// the forced row path, with no timing measured.
func TestBenchEngineSmoke(t *testing.T) {
	smokeMode = true
	defer func() { smokeMode = false }()
	if err := experiments["benchengine"].run(false); err != nil {
		t.Fatalf("benchengine -smoke: %v", err)
	}
}

// TestBenchIncrSmoke runs benchincr's identity pass (the CI smoke
// configuration): after every append batch the maintained pattern set
// must serialize byte-identical to a cold re-mine of the grown table.
func TestBenchIncrSmoke(t *testing.T) {
	smokeMode = true
	defer func() { smokeMode = false }()
	if err := experiments["benchincr"].run(false); err != nil {
		t.Fatalf("benchincr -smoke: %v", err)
	}
}

// TestBenchScaleSmoke runs benchscale's identity pass (the CI smoke
// configuration): all four miners over mmap'd segment files must
// serialize byte-identical pattern sets to the same miners over the
// dense in-memory table.
func TestBenchScaleSmoke(t *testing.T) {
	smokeMode = true
	defer func() { smokeMode = false }()
	if err := experiments["benchscale"].run(false); err != nil {
		t.Fatalf("benchscale -smoke: %v", err)
	}
}

// TestBenchLoadSmoke runs benchload's identity pass (the CI smoke
// configuration): the same data, mine, and questions against 1-shard
// and 2-shard coordinator deployments must produce byte-identical
// explanations (work counters excluded), with no load generated.
func TestBenchLoadSmoke(t *testing.T) {
	smokeMode = true
	defer func() { smokeMode = false }()
	if err := experiments["benchload"].run(false); err != nil {
		t.Fatalf("benchload -smoke: %v", err)
	}
}

// TestBenchServeSmoke runs benchserve's identity pass (the CI smoke
// configuration): indexed generation must match the linear scan
// explanation-for-explanation, and cache-on HTTP serving must match
// cache-off byte for byte, including cached replays across appends.
func TestBenchServeSmoke(t *testing.T) {
	smokeMode = true
	defer func() { smokeMode = false }()
	if err := experiments["benchserve"].run(false); err != nil {
		t.Fatalf("benchserve -smoke: %v", err)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig3c", "fig4", "fig5",
		"fig6a", "fig6b", "fig6c", "fig7",
		"table3", "table4", "table5", "table6", "table7", "userstudy",
		"benchexplain", "benchmine", "benchbatch", "benchengine",
		"benchincr", "benchscale", "benchload", "benchserve",
	}
	for _, name := range want {
		e, ok := experiments[name]
		if !ok {
			t.Errorf("experiment %q missing from registry", name)
			continue
		}
		if e.run == nil || e.desc == "" {
			t.Errorf("experiment %q incomplete", name)
		}
	}
	if len(experiments) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(experiments), len(want))
	}
}
