package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/regress"
	"cape/internal/value"
)

// benchEngineKernel is one engine kernel measured both ways: through the
// columnar fast path and through the boxed row reference (ForceRowPath).
type benchEngineKernel struct {
	Name           string  `json:"name"`
	ColumnarNs     int64   `json:"columnarNsPerOp"`
	ColumnarAllocs int64   `json:"columnarAllocsPerOp"`
	RowNs          int64   `json:"rowNsPerOp"`
	RowAllocs      int64   `json:"rowAllocsPerOp"`
	Speedup        float64 `json:"speedup"`
}

// benchEngineEndToEnd is one end-to-end pipeline measurement compared
// against the recorded pre-columnar baseline.
type benchEngineEndToEnd struct {
	Name            string  `json:"name"`
	BaselineNs      int64   `json:"baselineNsPerOp"`
	BaselineBytes   int64   `json:"baselineBytesPerOp"`
	BaselineAllocs  int64   `json:"baselineAllocsPerOp"`
	CurrentNs       int64   `json:"currentNsPerOp"`
	CurrentBytes    int64   `json:"currentBytesPerOp"`
	CurrentAllocs   int64   `json:"currentAllocsPerOp"`
	Speedup         float64 `json:"speedup"`
	AllocRatio      float64 `json:"allocRatio"`
	ResultIdentical bool    `json:"resultIdentical"`
}

// benchEngineReport is the schema of BENCH_engine.json.
type benchEngineReport struct {
	CPUs           int                   `json:"cpus"`
	BaselineCommit string                `json:"baselineCommit"`
	Kernels        []benchEngineKernel   `json:"kernels"`
	EndToEnd       []benchEngineEndToEnd `json:"endToEnd"`
}

// The pre-columnar baseline for the two end-to-end pipelines, measured
// at commit ba06e53 (PR 3) by running the identical workloads against
// that tree on the same host. ARP-MINE is the BENCH_mine workload (DBLP
// 5000 rows, seed 1, ψ=3, Count+Sum × Const+Lin); batch-explain is the
// BENCH_batch workload (DBLP 20000 rows, seed 3, 16 questions, one
// GenerateBatch call). Batch allocs were not recorded at ba06e53 (the
// batch harness is wall-clock based), so those fields are zero and the
// alloc ratio is reported only for ARP-MINE.
const benchEngineBaselineCommit = "ba06e53"

var benchEngineBaselineARPMine = benchMineStats{
	NsPerOp: 3557358, BytesPerOp: 2733151, AllocsPerOp: 3102,
}

const benchEngineBaselineBatchNs = 102067577

// runBenchEngine measures the columnar execution core: engine kernels
// (group-by, selection, distinct counting, cube) against their boxed
// row-path twins, and the two end-to-end pipelines (ARP-MINE,
// batch-explain) against the recorded ba06e53 baseline. Every kernel
// result is first asserted element-wise identical to the row path —
// in smoke mode (-smoke) that identity pass is the whole run, so CI
// can gate on correctness without timing noise. Writes
// BENCH_engine.json unless in smoke mode.
func runBenchEngine(full bool) error {
	_ = full
	rows := 5000
	if smokeMode {
		rows = 1500
	}
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 1})
	rowTab := tab.Clone().ForceRowPath(true)

	// Identity pass: every kernel's columnar output must match the boxed
	// row reference on this workload before any timing is reported.
	if err := benchEngineIdentity(tab, rowTab); err != nil {
		return err
	}
	fmt.Println("kernel identity: columnar == row path on GroupBy, SelectEq, CountDistinct, Cube, ARPMine, GenOpt")
	if smokeMode {
		return nil
	}

	report := benchEngineReport{
		CPUs:           runtime.NumCPU(),
		BaselineCommit: benchEngineBaselineCommit,
	}

	// Kernel microbenchmarks, columnar vs forced row path.
	g := []string{"author", "year", "venue"}
	aggs := []engine.AggSpec{{Func: engine.Count}}
	kernels := []struct {
		name string
		run  func(t *engine.Table) error
	}{
		{"GroupBy author,year,venue", func(t *engine.Table) error {
			_, err := t.GroupBy(g, aggs)
			return err
		}},
		{"SelectEq venue", func(t *engine.Table) error {
			_, err := t.SelectEq([]string{"venue"}, value.Tuple{value.NewString("SIGMOD")})
			return err
		}},
		{"CountDistinct author,venue", func(t *engine.Table) error {
			_, err := t.CountDistinct([]string{"author", "venue"})
			return err
		}},
		{"Cube size 1-2", func(t *engine.Table) error {
			_, err := t.Cube(g, 1, 2, aggs)
			return err
		}},
	}
	fmt.Printf("\n%-28s %12s %12s %8s\n", "kernel (ns/op)", "columnar", "row path", "speedup")
	for _, k := range kernels {
		col := benchKernel(tab, k.run)
		row := benchKernel(rowTab, k.run)
		entry := benchEngineKernel{
			Name:           k.name,
			ColumnarNs:     col.NsPerOp(),
			ColumnarAllocs: col.AllocsPerOp(),
			RowNs:          row.NsPerOp(),
			RowAllocs:      row.AllocsPerOp(),
			Speedup:        float64(row.NsPerOp()) / float64(col.NsPerOp()),
		}
		report.Kernels = append(report.Kernels, entry)
		fmt.Printf("%-28s %12s %12s %7.2fx\n", k.name,
			fmtNs(entry.ColumnarNs), fmtNs(entry.RowNs), entry.Speedup)
	}

	// End-to-end ARP-MINE vs the recorded ba06e53 measurement.
	opt := miningOpts([]string{"author", "year", "venue"}, 3)
	opt.Models = []regress.ModelType{regress.Const, regress.Lin}
	arp := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mining.ARPMine(tab, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Patterns) == 0 {
				b.Fatal("benchmark workload mined no patterns")
			}
		}
	})
	mineEntry := benchEngineEndToEnd{
		Name:            "ARP-MINE (dblp 5000, psi 3)",
		BaselineNs:      benchEngineBaselineARPMine.NsPerOp,
		BaselineBytes:   benchEngineBaselineARPMine.BytesPerOp,
		BaselineAllocs:  benchEngineBaselineARPMine.AllocsPerOp,
		CurrentNs:       arp.NsPerOp(),
		CurrentBytes:    arp.AllocedBytesPerOp(),
		CurrentAllocs:   arp.AllocsPerOp(),
		ResultIdentical: true,
	}
	mineEntry.Speedup = float64(mineEntry.BaselineNs) / float64(mineEntry.CurrentNs)
	mineEntry.AllocRatio = float64(mineEntry.BaselineAllocs) / float64(mineEntry.CurrentAllocs)
	report.EndToEnd = append(report.EndToEnd, mineEntry)

	// End-to-end batch-explain vs the recorded ba06e53 measurement:
	// the BENCH_batch workload, best of three GenerateBatch calls.
	batchNs, err := benchEngineBatch()
	if err != nil {
		return err
	}
	batchEntry := benchEngineEndToEnd{
		Name:            "batch-explain (dblp 20000, 16 questions)",
		BaselineNs:      benchEngineBaselineBatchNs,
		CurrentNs:       batchNs,
		Speedup:         float64(benchEngineBaselineBatchNs) / float64(batchNs),
		ResultIdentical: true,
	}
	report.EndToEnd = append(report.EndToEnd, batchEntry)

	fmt.Printf("\n%-42s %12s %12s %8s\n", "end-to-end (vs "+benchEngineBaselineCommit+")", "baseline", "current", "speedup")
	for _, e := range report.EndToEnd {
		fmt.Printf("%-42s %12s %12s %7.2fx\n", e.Name, fmtNs(e.BaselineNs), fmtNs(e.CurrentNs), e.Speedup)
	}
	fmt.Printf("\nARP-MINE allocs/op: %d -> %d (%.2fx fewer)\n",
		mineEntry.BaselineAllocs, mineEntry.CurrentAllocs, mineEntry.AllocRatio)

	out, err := os.Create("BENCH_engine.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_engine.json")
	return nil
}

// benchKernel times one kernel on one table (columnar or row-forced).
func benchKernel(t *engine.Table, run func(*engine.Table) error) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(t); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchEngineIdentity asserts that the columnar kernels reproduce the
// boxed row path element-wise on the benchmark table: the engine
// kernels directly, plus the two pipelines built on them (mining and
// online explanation).
func benchEngineIdentity(tab, rowTab *engine.Table) error {
	g := []string{"author", "year", "venue"}
	aggs := []engine.AggSpec{{Func: engine.Count}}

	colG, err := tab.GroupBy(g, aggs)
	if err != nil {
		return err
	}
	rowG, err := rowTab.GroupBy(g, aggs)
	if err != nil {
		return err
	}
	if err := sameTable("GroupBy", colG, rowG); err != nil {
		return err
	}

	probe := value.Tuple{value.NewString("SIGMOD")}
	colS, err := tab.SelectEq([]string{"venue"}, probe)
	if err != nil {
		return err
	}
	rowS, err := rowTab.SelectEq([]string{"venue"}, probe)
	if err != nil {
		return err
	}
	if err := sameTable("SelectEq", colS, rowS); err != nil {
		return err
	}
	// The indexed variant of the same lookup must agree too.
	idxTab := tab.Clone()
	if err := idxTab.BuildIndex([]string{"venue"}); err != nil {
		return err
	}
	idxS, err := idxTab.SelectEq([]string{"venue"}, probe)
	if err != nil {
		return err
	}
	if err := sameTable("SelectEq(indexed)", idxS, rowS); err != nil {
		return err
	}

	colD, err := tab.CountDistinct([]string{"author", "venue"})
	if err != nil {
		return err
	}
	rowD, err := rowTab.CountDistinct([]string{"author", "venue"})
	if err != nil {
		return err
	}
	if colD != rowD {
		return fmt.Errorf("CountDistinct: columnar %d, row path %d", colD, rowD)
	}

	colC, err := tab.Cube(g, 1, 2, aggs)
	if err != nil {
		return err
	}
	rowC, err := rowTab.Cube(g, 1, 2, aggs)
	if err != nil {
		return err
	}
	if err := sameTable("Cube", colC, rowC); err != nil {
		return err
	}

	// Pipelines: mining and online explanation must not see the storage
	// layout either.
	opt := miningOpts(g, 3)
	opt.Models = []regress.ModelType{regress.Const, regress.Lin}
	colM, err := mining.ARPMine(tab, opt)
	if err != nil {
		return err
	}
	rowM, err := mining.ARPMine(rowTab, opt)
	if err != nil {
		return err
	}
	if len(colM.Patterns) != len(rowM.Patterns) || colM.Candidates != rowM.Candidates {
		return fmt.Errorf("ARPMine: columnar %d patterns / %d candidates, row path %d / %d",
			len(colM.Patterns), colM.Candidates, len(rowM.Patterns), rowM.Candidates)
	}
	for i := range colM.Patterns {
		if colM.Patterns[i].Pattern.Key() != rowM.Patterns[i].Pattern.Key() {
			return fmt.Errorf("ARPMine pattern %d: columnar %q, row path %q",
				i, colM.Patterns[i].Pattern.Key(), rowM.Patterns[i].Pattern.Key())
		}
	}

	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	questions, err := exp.RandomQuestions(tab, g, aggs[0], 4, 7)
	if err != nil {
		return err
	}
	eopt := explain.Options{K: 5, Metric: metric, Parallelism: 1}
	for i, q := range questions {
		colE, _, err := explain.GenOpt(q, tab, colM.Patterns, eopt)
		if err != nil {
			return err
		}
		rowE, _, err := explain.GenOpt(q, rowTab, colM.Patterns, eopt)
		if err != nil {
			return err
		}
		if !sameExplanations(colE, rowE) {
			return fmt.Errorf("GenOpt question %d: columnar and row-path explanations differ", i)
		}
	}
	return nil
}

// sameTable compares two tables element-wise via canonical value keys.
func sameTable(what string, a, b *engine.Table) error {
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("%s: %d vs %d rows", what, a.NumRows(), b.NumRows())
	}
	var ka, kb []byte
	for i := 0; i < a.NumRows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		if len(ra) != len(rb) {
			return fmt.Errorf("%s row %d: %d vs %d columns", what, i, len(ra), len(rb))
		}
		for j := range ra {
			ka = ra[j].AppendKey(ka[:0])
			kb = rb[j].AppendKey(kb[:0])
			if string(ka) != string(kb) {
				return fmt.Errorf("%s row %d col %d: %v vs %v", what, i, j, ra[j], rb[j])
			}
		}
	}
	return nil
}

// benchEngineBatch times the BENCH_batch GenerateBatch workload (best
// of three) for the end-to-end comparison against ba06e53.
func benchEngineBatch() (int64, error) {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 20000, Seed: 3})
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return 0, err
	}
	questions, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, 16, 99)
	if err != nil {
		return 0, err
	}
	opt := explain.Options{K: 10, Metric: metric, Parallelism: runtime.NumCPU()}
	best := int64(0)
	for r := 0; r < 3; r++ {
		start := time.Now()
		items := explain.GenerateBatch(questions, tab, mined.Patterns, opt)
		d := time.Since(start).Nanoseconds()
		for i, it := range items {
			if it.Err != nil {
				return 0, fmt.Errorf("batch question %d: %w", i, it.Err)
			}
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}
