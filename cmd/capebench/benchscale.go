package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// benchScalePoint is one worker count of a miner's scaling curve over
// the segment path. Identical reports byte-identity against the
// one-worker dense reference.
type benchScalePoint struct {
	Workers   int   `json:"workers"`
	SegmentNs int64 `json:"segmentNs"`
	Identical bool  `json:"resultIdentical"`
}

// benchScaleMiner is one miner variant timed at one dataset size: once
// over the dense in-memory table at one worker (the reference), and
// over the mmap'd segment files at every worker count of the sweep.
// SegmentNs/Identical mirror the one-worker scaling point so the
// single-core compressed-vs-dense comparison reads directly.
type benchScaleMiner struct {
	Name      string            `json:"name"`
	SegmentNs int64             `json:"segmentNs"`
	DenseNs   int64             `json:"denseNs"`
	Patterns  int               `json:"patterns"`
	Identical bool              `json:"resultIdentical"`
	Scaling   []benchScalePoint `json:"scaling,omitempty"`
}

// benchScaleEntry is one dataset size of BENCH_scale.json.
type benchScaleEntry struct {
	Rows             int               `json:"rows"`
	Segments         int               `json:"segments"`
	SegmentBytes     int64             `json:"segmentBytes"`
	Miners           []benchScaleMiner `json:"miners"`
	Figure4Ordering  bool              `json:"figure4Ordering"`
	ResultsIdentical bool              `json:"resultsIdentical"`
	SegmentPeakRSSKB int64             `json:"segmentPeakRSSKB,omitempty"`
	DensePeakRSSKB   int64             `json:"densePeakRSSKB,omitempty"`
}

// benchScaleReport is the schema of BENCH_scale.json.
type benchScaleReport struct {
	CPUs    int               `json:"cpus"`
	Attrs   []string          `json:"attrs"`
	Psi     int               `json:"psi"`
	Workers []int             `json:"workers"`
	Sizes   []benchScaleEntry `json:"sizes"`
}

// benchScaleWorkers is the worker-count sweep of the segment pass,
// capped by -parallel: -parallel 1 (default) measures only the
// sequential point, -parallel 8 the full 1/2/4/8 curve.
func benchScaleWorkers() []int {
	sweep := []int{1, 2, 4, 8}
	out := sweep[:1]
	for i, w := range sweep {
		if w <= parallelFlag {
			out = sweep[:i+1]
		}
	}
	return out
}

// benchScaleSegRows is the target row count per segment file.
const benchScaleSegRows = 512 * 1024

// benchScaleAttrs keeps the candidate space small enough that NAIVE
// finishes at a million rows, while the high-cardinality block column
// (~1000 distinct values) makes the grouped results large enough that
// the phase where the variants actually differ — slicing and sorting
// the grouped rows per (F, V) split — carries measurable weight. Over
// low-cardinality attributes only, the grouped tables are a few
// thousand rows at any scale, the shared scan dominates every variant
// equally, and CUBE, SHARE-GRP and ARP-MINE converge within noise.
var benchScaleAttrs = []string{"type", "block", "year", "month"}

// runBenchScale reproduces the paper's Figure-4 miner comparison at
// paper scale: the four variants over the same Crime data at 250K–6.5M
// rows (-full adds the 6.5M point) — over mmap'd compressed segment
// files written by the streaming generator at every worker count of the
// -parallel sweep, and over the dense in-memory table sequentially.
// Every segment run must serialize byte-identical pattern sets to the
// dense reference; the first (largest) size also records the process peak
// RSS after the segment pass and after the dense pass, demonstrating
// that segment-backed mining stays below the dense baseline. In smoke
// mode only the identity assertions run, on a small size. Writes
// BENCH_scale.json unless in smoke mode.
func runBenchScale(full bool) error {
	// Largest size first: peak RSS is a process-lifetime high-water mark,
	// so only the first measurements are attributable — the segment pass
	// runs before any dense table has ever been materialized.
	sizes := []int{1000000, 250000}
	if full {
		sizes = []int{6500000, 1000000, 250000}
	}
	if smokeMode {
		// Small enough that the identity pass stays fast even under the
		// race detector (make check runs the smoke both ways): NAIVE's
		// per-candidate queries over the segment path dominate, and
		// their cost grows superlinearly with rows here because the
		// block column's group count tracks the row count.
		sizes = []int{6000}
	}
	// ψ=3 separates the variants (at ψ=2 CUBE, SHARE-GRP and ARP-MINE all
	// reduce to the same handful of group-bys and converge within noise);
	// the thresholds sit slightly looser than paperThresholds, which
	// admit no patterns at all over these attributes and would make the
	// byte-identity assertion compare empty sets.
	opt := mining.Options{
		MaxPatternSize: 3,
		Attributes:     benchScaleAttrs,
		Thresholds:     pattern.Thresholds{Theta: 0.25, LocalSupport: 4, Lambda: 0.25, GlobalSupport: 3},
		AggFuncs:       []engine.AggFunc{engine.Count},
	}

	report := benchScaleReport{
		CPUs: runtime.NumCPU(), Attrs: benchScaleAttrs, Psi: opt.MaxPatternSize,
		Workers: benchScaleWorkers(),
	}
	for i, rows := range sizes {
		entry, err := benchScaleSize(rows, opt, i == 0 && !smokeMode)
		if err != nil {
			return err
		}
		if !entry.ResultsIdentical {
			return fmt.Errorf("benchscale D=%d: segment-backed and dense mining diverge", rows)
		}
		report.Sizes = append(report.Sizes, *entry)
		// Release the size's working set before the next (smaller) one.
		runtime.GC()
	}
	if smokeMode {
		fmt.Printf("scale identity: segment-backed mining == dense mining for NAIVE, CUBE, SHARE-GRP, ARP-MINE at workers %v\n",
			report.Workers)
		return nil
	}

	fmt.Printf("Crime, A=%v, ψ=%d, segment files vs dense table, workers %v\n",
		benchScaleAttrs, opt.MaxPatternSize, report.Workers)
	fmt.Printf("%9s  %-10s %12s %12s  %9s  %s\n", "D", "variant", "segment", "dense", "patterns", "scaling")
	for _, e := range report.Sizes {
		for _, m := range e.Miners {
			curve := ""
			for _, p := range m.Scaling {
				if curve != "" {
					curve += " "
				}
				curve += fmt.Sprintf("%dw=%s", p.Workers, time.Duration(p.SegmentNs).Round(time.Millisecond))
			}
			fmt.Printf("%9d  %-10s %12s %12s  %9d  %s\n", e.Rows, m.Name,
				time.Duration(m.SegmentNs).Round(time.Millisecond),
				time.Duration(m.DenseNs).Round(time.Millisecond), m.Patterns, curve)
		}
		fmt.Printf("%9s  figure-4 ordering (NAIVE ≥ CUBE ≥ SHARE-GRP ≥ ARP-MINE): %v\n", "", e.Figure4Ordering)
		if e.SegmentPeakRSSKB > 0 {
			fmt.Printf("%9s  peak RSS: %d MB after segment pass, %d MB after dense pass\n", "",
				e.SegmentPeakRSSKB/1024, e.DensePeakRSSKB/1024)
		}
	}

	out, err := os.Create("BENCH_scale.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_scale.json")
	return nil
}

// benchScaleSize runs all four miners at one dataset size, segment path
// first (so an RSS snapshot taken between the passes is attributable to
// it), then the dense path on the materialized table.
func benchScaleSize(rows int, opt mining.Options, recordRSS bool) (*benchScaleEntry, error) {
	// NumAttrs 6 reaches "block" in the generator's fixed attribute
	// order (type, community, year, month, district, block).
	cfg := dataset.CrimeConfig{Rows: rows, Seed: 1, NumAttrs: 6}
	entry := &benchScaleEntry{Rows: rows, ResultsIdentical: true}

	dir, err := os.MkdirTemp("", "benchscale")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	segRows := benchScaleSegRows
	if smokeMode {
		segRows = 2048 // several segments even at the smoke size
	}
	paths, segBytes, err := writeCrimeSegments(cfg, dir, segRows)
	if err != nil {
		return nil, err
	}
	entry.Segments = len(paths)
	entry.SegmentBytes = segBytes

	st, err := engine.OpenSegTable(paths...)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if st.NumRows() != rows {
		return nil, fmt.Errorf("segments hold %d rows, want %d", st.NumRows(), rows)
	}

	// Segment pass: mining over the mmap'd files, no dense table in the
	// process yet. Each miner runs at every worker count of the sweep;
	// the one-worker point doubles as the single-core compressed-vs-dense
	// comparison.
	workers := benchScaleWorkers()
	segJSON := make([][]*bytes.Buffer, len(miners))
	for i, m := range miners {
		bm := benchScaleMiner{Name: m.name}
		segJSON[i] = make([]*bytes.Buffer, len(workers))
		for wi, w := range workers {
			wopt := opt
			wopt.Parallelism = w
			d, res, err := timeMiner(m.run, st, wopt)
			if err != nil {
				return nil, fmt.Errorf("%s over segments (%d workers): %w", m.name, w, err)
			}
			var buf bytes.Buffer
			if err := pattern.WriteJSON(&buf, res.Patterns); err != nil {
				return nil, err
			}
			segJSON[i][wi] = &buf
			bm.Scaling = append(bm.Scaling, benchScalePoint{Workers: w, SegmentNs: d.Nanoseconds()})
			if w == 1 {
				bm.SegmentNs = d.Nanoseconds()
				bm.Patterns = len(res.Patterns)
			}
		}
		entry.Miners = append(entry.Miners, bm)
	}
	if recordRSS {
		entry.SegmentPeakRSSKB = peakRSSKB()
	}

	// Dense pass: the baseline materializes every row as boxed tuples and
	// runs sequentially — its output is the byte-identity reference for
	// every (miner, worker count) segment run.
	dense := dataset.GenerateCrime(cfg)
	for i, m := range miners {
		d, res, err := timeMiner(m.run, dense, opt)
		if err != nil {
			return nil, fmt.Errorf("%s over dense table: %w", m.name, err)
		}
		var buf bytes.Buffer
		if err := pattern.WriteJSON(&buf, res.Patterns); err != nil {
			return nil, err
		}
		entry.Miners[i].DenseNs = d.Nanoseconds()
		entry.Miners[i].Identical = true
		for wi := range workers {
			same := bytes.Equal(segJSON[i][wi].Bytes(), buf.Bytes())
			entry.Miners[i].Scaling[wi].Identical = same
			if !same {
				entry.ResultsIdentical = false
				if workers[wi] == 1 {
					entry.Miners[i].Identical = false
				}
			}
		}
	}
	if recordRSS {
		entry.DensePeakRSSKB = peakRSSKB()
	}

	ns := func(name string) int64 {
		for _, m := range entry.Miners {
			if m.Name == name {
				return m.SegmentNs
			}
		}
		return 0
	}
	entry.Figure4Ordering = ns("NAIVE") >= ns("CUBE") &&
		ns("CUBE") >= ns("SHARE-GRP") && ns("SHARE-GRP") >= ns("ARP-MINE")
	return entry, nil
}

// writeCrimeSegments streams the crime generator into consecutive
// segment files of ~segRows rows each, never holding more than one
// segment's codes in memory. Returns the file paths and total bytes.
func writeCrimeSegments(cfg dataset.CrimeConfig, dir string, segRows int) ([]string, int64, error) {
	sch := dataset.CrimeSchema(cfg)
	w := engine.NewSegmentWriter(sch)
	var paths []string
	var total int64
	seal := func() error {
		if w.NumRows() == 0 {
			return nil
		}
		p := filepath.Join(dir, fmt.Sprintf("crime-%04d.seg", len(paths)))
		if err := w.WriteFile(p); err != nil {
			return err
		}
		info, err := os.Stat(p)
		if err != nil {
			return err
		}
		total += info.Size()
		paths = append(paths, p)
		w = engine.NewSegmentWriter(sch)
		return nil
	}
	err := dataset.StreamCrime(cfg, 8192, func(batch []value.Tuple) error {
		if err := w.AppendRows(batch); err != nil {
			return err
		}
		if w.NumRows() >= segRows {
			return seal()
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if err := seal(); err != nil {
		return nil, 0, err
	}
	return paths, total, nil
}

// peakRSSKB reads the process peak resident set (VmHWM) in KB; 0 when
// /proc is unavailable.
func peakRSSKB() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				n, err := strconv.ParseInt(fields[0], 10, 64)
				if err == nil {
					return n
				}
			}
		}
	}
	return 0
}
