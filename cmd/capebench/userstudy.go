package main

import (
	"fmt"

	"cape/internal/baseline"
	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// runUserStudy reproduces the machine-checkable part of the Appendix-B
// user study. The paper measured whether 14 humans — half with CAPE's
// top-10, half without — could find a "sensible explanation" for three
// outlier questions over a two-community crime extract. Humans are out of
// scope for this repository; what can be reproduced is the core claim
// behind the treatment group's advantage: for each study question, the
// planted sensible explanation appears in CAPE's top-10 but not in the
// pattern-blind baseline's.
func runUserStudy(bool) error {
	tab := dataset.GenerateCrime(dataset.CrimeConfig{
		Rows: 10000, Seed: 7, NumAttrs: 5, NumTypes: 6, NumCommunities: 12,
	})
	qAttrs := []string{"type", "community", "year"}
	spec := exp.SiteSpec{TypeAttr: "type", FragAttr: "community", PredAttr: "year", MinOutlierCount: 10}
	opt := mining.Options{
		MaxPatternSize: 3,
		Attributes:     qAttrs,
		Thresholds:     pattern.Thresholds{Theta: 0.2, LocalSupport: 3, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []engine.AggFunc{engine.Count},
	}
	metric := distance.NewMetric().
		SetFunc("year", distance.Numeric{Scale: 3}).
		SetFunc("community", distance.Numeric{Scale: 2})

	clean, err := mining.ARPMine(tab, opt)
	if err != nil {
		return err
	}
	sites, err := exp.FindSites(tab, spec, clean.Patterns, 3)
	if err != nil {
		return err
	}
	if len(sites) < 3 {
		return fmt.Errorf("only %d study sites found, need 3", len(sites))
	}

	fmt.Println("three study questions with a planted sensible explanation each;")
	fmt.Println("hit = the planted counterbalance appears in the method's top-10")
	fmt.Printf("\n%4s  %-40s %6s %10s\n", "phi", "question tuple (low)", "CAPE", "baseline")
	capeHits, baseHits := 0, 0
	for i, site := range sites[:3] {
		injected, gt, err := dataset.InjectCounterbalance(tab, qAttrs, site.Outlier, site.Counter, 5, "low")
		if err != nil {
			return err
		}
		mined, err := mining.ARPMine(injected, opt)
		if err != nil {
			return err
		}
		sel, err := injected.SelectEq(qAttrs, site.Outlier)
		if err != nil {
			return err
		}
		q := explain.UserQuestion{
			GroupBy: qAttrs, Agg: engine.AggSpec{Func: engine.Count},
			Values: site.Outlier, AggValue: value.NewInt(int64(sel.NumRows())), Dir: explain.Low,
		}
		expls, _, err := explain.Generate(q, injected, mined.Patterns, explain.Options{K: 10, Metric: metric})
		if err != nil {
			return err
		}
		capeHit := false
		for _, e := range expls {
			if sensible(e, qAttrs, gt) {
				capeHit = true
				break
			}
		}
		base, err := baseline.Explain(q, injected, baseline.Options{K: 10, Metric: metric})
		if err != nil {
			return err
		}
		baseHit := false
		for _, e := range base {
			if e.Tuple.Equal(gt.CounterTuple) {
				baseHit = true
				break
			}
		}
		if capeHit {
			capeHits++
		}
		if baseHit {
			baseHits++
		}
		fmt.Printf("%4d  %-40s %6v %10v\n", i+1, site.Outlier.String(), capeHit, baseHit)
	}
	fmt.Printf("\nsuccess rate: CAPE %d/3, baseline %d/3\n", capeHits, baseHits)
	fmt.Println("(the paper's human success rates: treatment 86/71/57%, control 71/43/0%)")
	return nil
}

// sensible mirrors the paper's manual grading: an explanation counts if
// it matches the planted counterbalance on every question attribute it
// carries and pins down at least the shared community and year — exact
// matches and their coarser (community, year) roll-ups both qualify,
// since both point the analyst at the shifted reports.
func sensible(e explain.Explanation, qAttrs []string, gt dataset.GroundTruth) bool {
	if exp.Covers(e, qAttrs, gt.CounterTuple) {
		return true
	}
	matched := map[string]bool{}
	for i, a := range e.Attrs {
		for j, ga := range qAttrs {
			if a != ga {
				continue
			}
			if !value.Equal(e.Tuple[i], gt.CounterTuple[j]) {
				return false
			}
			matched[a] = true
		}
	}
	// qAttrs is (type, frag, pred); require the frag and pred attributes.
	return matched[qAttrs[1]] && matched[qAttrs[2]]
}
