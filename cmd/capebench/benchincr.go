package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// benchIncrReport is the schema of BENCH_incr.json.
type benchIncrReport struct {
	Dataset     string `json:"dataset"`
	Rows        int    `json:"rows"`
	BatchRows   int    `json:"batchRows"`
	Steps       int    `json:"steps"`
	Psi         int    `json:"psi"`
	CPUs        int    `json:"cpus"`
	Parallelism int    `json:"parallelism"`
	// MaintainerBuildNs is the one-time cost of the initial full fit
	// that seeds the retained statistics (paid once per serving process,
	// amortized over every subsequent append).
	MaintainerBuildNs int64 `json:"maintainerBuildNs"`
	// IncrementalNsPerBatch is the mean cost of folding one append batch
	// into the maintained set (AppendRows + delta routing + re-fits).
	IncrementalNsPerBatch int64 `json:"incrementalNsPerBatch"`
	// RemineNsPerBatch is the mean cost of the status quo ante: a full
	// ARPMine over the grown table after each batch.
	RemineNsPerBatch int64   `json:"remineNsPerBatch"`
	Speedup          float64 `json:"speedup"`
	// Identical reports that after every batch the maintained pattern
	// set serialized byte-identical to the cold re-mine.
	Identical bool `json:"identical"`
}

// runBenchIncr measures incremental pattern maintenance against the only
// alternative a live system had before it: a full re-mine on every
// append. The workload is the BENCH_mine DBLP table (5000 rows, seed 1,
// ψ=3, Count+Sum × Const+Lin) receiving 1% append batches; after every
// batch the maintained set is asserted byte-identical to a cold ARPMine
// of the grown table before any timing is reported. In -smoke mode the
// identity pass (smaller table) is the whole run: no timing, no JSON.
func runBenchIncr(full bool) error {
	_ = full
	rows, steps := 5000, 10
	if smokeMode {
		rows, steps = 800, 3
	}
	batch := rows / 100 // 1% append batches
	total := rows + steps*batch
	src := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: total, Seed: 1})

	// Base table plus a twin: the maintainer owns one, the re-mine
	// comparator the other, so both sides see identical row streams.
	incTab := engine.NewTable(src.Schema())
	mineTab := engine.NewTable(src.Schema())
	if err := incTab.AppendRows(src.Rows()[:rows]); err != nil {
		return err
	}
	if err := mineTab.AppendRows(src.Rows()[:rows]); err != nil {
		return err
	}
	batches := make([][]value.Tuple, steps)
	for i := range batches {
		batches[i] = src.Rows()[rows+i*batch : rows+(i+1)*batch]
	}

	opt := miningOpts([]string{"author", "year", "venue"}, 3)
	opt.Models = []regress.ModelType{regress.Const, regress.Lin}
	// Both sides share the budget: the maintainer fans grouping sets, the
	// re-mine comparator fans its group phase, and the identity assertion
	// pins their outputs byte-equal at any width.
	opt.Parallelism = parallelFlag

	buildStart := time.Now()
	m, err := mining.NewMaintainer(incTab, opt)
	if err != nil {
		return err
	}
	buildNs := time.Since(buildStart).Nanoseconds()

	var incNs, mineNs int64
	for i, b := range batches {
		t0 := time.Now()
		if err := m.Apply(b); err != nil {
			return err
		}
		incNs += time.Since(t0).Nanoseconds()

		if err := mineTab.AppendRows(b); err != nil {
			return err
		}
		t0 = time.Now()
		res, err := mining.ARPMine(mineTab, opt)
		if err != nil {
			return err
		}
		mineNs += time.Since(t0).Nanoseconds()

		var got, want bytes.Buffer
		if err := pattern.WriteJSON(&got, m.Patterns()); err != nil {
			return err
		}
		if err := pattern.WriteJSON(&want, res.Patterns); err != nil {
			return err
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			return fmt.Errorf("batch %d: maintained set diverges from cold re-mine", i)
		}
	}
	fmt.Printf("identity: maintained set == cold re-mine after every one of %d batches (%d rows each)\n",
		steps, batch)
	if smokeMode {
		return nil
	}

	report := benchIncrReport{
		Dataset: "dblp", Rows: rows, BatchRows: batch, Steps: steps, Psi: 3,
		CPUs:                  runtime.NumCPU(),
		Parallelism:           parallelFlag,
		MaintainerBuildNs:     buildNs,
		IncrementalNsPerBatch: incNs / int64(steps),
		RemineNsPerBatch:      mineNs / int64(steps),
		Identical:             true,
	}
	report.Speedup = float64(report.RemineNsPerBatch) / float64(report.IncrementalNsPerBatch)

	fmt.Printf("\nDBLP %d rows, %d append batches of %d rows (1%%), ψ=3, count+sum × const+lin\n",
		rows, steps, batch)
	fmt.Printf("%-34s %12s\n", "maintainer build (once)", fmtNs(report.MaintainerBuildNs))
	fmt.Printf("%-34s %12s\n", "incremental maintain per batch", fmtNs(report.IncrementalNsPerBatch))
	fmt.Printf("%-34s %12s\n", "full re-mine per batch", fmtNs(report.RemineNsPerBatch))
	fmt.Printf("%-34s %11.2fx\n", "speedup", report.Speedup)

	out, err := os.Create("BENCH_incr.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_incr.json")
	return nil
}
