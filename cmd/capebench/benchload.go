package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/httpc"
	"cape/internal/server"
)

// benchLoadResult is one shard count's open-loop measurement in
// BENCH_load.json.
type benchLoadResult struct {
	Shards     int     `json:"shards"`
	Arrivals   int     `json:"arrivals"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`
	ShedRate   float64 `json:"shedRate"`
	GoodputRPS float64 `json:"goodputRPS"`
	P50Ms      float64 `json:"p50Ms"`
	P95Ms      float64 `json:"p95Ms"`
	P99Ms      float64 `json:"p99Ms"`
	// Coordinator answer-cache counters for the run (hits never fan
	// out to a shard); the hit rate is what a skewed stream buys.
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
}

// benchLoadReport is the schema of BENCH_load.json.
type benchLoadReport struct {
	Dataset        string            `json:"dataset"`
	Rows           int               `json:"rows"`
	CPUs           int               `json:"cpus"`
	Patterns       int               `json:"patterns"`
	QuestionPool   int               `json:"questionPool"`
	ArrivalRate    float64           `json:"arrivalRateRPS"`
	MaxQueue       int               `json:"maxQueue"`
	Zipf           bool              `json:"zipf"`
	ZipfS          float64           `json:"zipfS,omitempty"`
	Results        []benchLoadResult `json:"results"`
	Goodput1To4X   float64           `json:"goodput1to4x"`
	SuperUnity1To4 bool              `json:"superUnity1to4"`
}

// loadMine is the mining request every benchload deployment uses.
func loadMine() server.MineRequest {
	th := lenientThresholds()
	return server.MineRequest{
		Table:          "pub",
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Theta:          th.Theta,
		LocalSupport:   th.LocalSupport,
		Lambda:         th.Lambda,
		GlobalSupport:  th.GlobalSupport,
		Aggregates:     []string{"count"},
	}
}

// loadDeployment is one running sharded deployment under test.
type loadDeployment struct {
	coordURL string
	psID     string
	patterns int
	close    func()
}

// newLoadDeployment brings up n in-process shard servers behind a
// coordinator, loads the CSV (partitioned by author), and mines. The
// small MaxQueue is the point: under open-loop overload the coordinator
// must shed rather than queue without bound.
func newLoadDeployment(n int, csv []byte, maxQueue int) (*loadDeployment, error) {
	shards := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = httptest.NewServer(server.New())
		urls[i] = shards[i].URL
	}
	closeAll := func() {
		for _, s := range shards {
			s.Close()
		}
	}
	coord, err := server.NewCoordinator(server.CoordConfig{
		Shards:   urls,
		Key:      []string{"author"},
		MaxQueue: maxQueue,
		Client:   httpc.NewClient(n),
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	cts := httptest.NewServer(coord)
	d := &loadDeployment{coordURL: cts.URL, close: func() { cts.Close(); closeAll() }}

	resp, err := http.Post(cts.URL+"/v1/tables?name=pub", "text/csv", bytes.NewReader(csv))
	if err != nil {
		d.close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		d.close()
		return nil, fmt.Errorf("load table: status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(loadMine())
	resp, err = http.Post(cts.URL+"/v1/mine", "application/json", bytes.NewReader(body))
	if err != nil {
		d.close()
		return nil, err
	}
	var mout struct {
		ID       string `json:"id"`
		Patterns int    `json:"patterns"`
	}
	err = json.NewDecoder(resp.Body).Decode(&mout)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		d.close()
		return nil, fmt.Errorf("mine: status %d err %v", resp.StatusCode, err)
	}
	d.psID = mout.ID
	d.patterns = mout.Patterns
	return d, nil
}

// loadQuestionBodies builds the explain request pool: every question
// groups by a superset of the shard key, so each is owner-routable.
func loadQuestionBodies(tab *engine.Table, psID string, n int) ([][]byte, error) {
	qs, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, n, 7)
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, 0, len(qs))
	for _, q := range qs {
		tuple := make([]string, len(q.Values))
		for i, v := range q.Values {
			tuple[i] = v.String()
		}
		b, err := json.Marshal(server.ExplainRequest{
			Patterns: psID, GroupBy: q.GroupBy, Tuple: tuple, Dir: q.Dir.String(), K: 10,
		})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, b)
	}
	return bodies, nil
}

// loadPicks pre-draws the question index for every arrival: round-robin
// over the pool by default, or Zipf-skewed (-zipf) so a handful of hot
// questions dominate the stream. Drawing up front keeps the arrival
// goroutines free of shared RNG state and the stream deterministic.
func loadPicks(arrivals, pool int, s float64) []int {
	picks := make([]int, arrivals)
	if !zipfFlag {
		for i := range picks {
			picks[i] = i % pool
		}
		return picks
	}
	z := rand.NewZipf(rand.New(rand.NewSource(42)), s, 1, uint64(pool-1))
	for i := range picks {
		picks[i] = int(z.Uint64())
	}
	return picks
}

// openLoop fires `arrivals` explain requests at a fixed arrival rate —
// arrivals do NOT wait for completions, so each in-flight request is
// its own simulated client and a slow server faces unbounded offered
// concurrency, exactly the regime load shedding exists for. picks[i]
// selects arrival i's question from the pool.
func openLoop(client *http.Client, url string, bodies [][]byte, picks []int, rate float64, arrivals int) benchLoadResult {
	interval := time.Duration(float64(time.Second) / rate)
	var (
		mu        sync.Mutex
		latencies []float64
		shed      int
		errs      int
	)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < arrivals; i++ {
		// Open-loop pacing: arrival i is due at start + i*interval
		// regardless of how the previous requests are doing.
		if sleep := time.Until(start.Add(time.Duration(i) * interval)); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(url+"/v1/explain", "application/json", bytes.NewReader(body))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				latencies = append(latencies, float64(lat)/float64(time.Millisecond))
			case resp.StatusCode == http.StatusTooManyRequests:
				shed++
			default:
				errs++
			}
		}(bodies[picks[i]])
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	return benchLoadResult{
		Arrivals:   arrivals,
		OK:         len(latencies),
		Shed:       shed,
		Errors:     errs,
		ShedRate:   float64(shed) / float64(arrivals),
		GoodputRPS: float64(len(latencies)) / wall.Seconds(),
		P50Ms:      pct(0.50),
		P95Ms:      pct(0.95),
		P99Ms:      pct(0.99),
	}
}

// runBenchLoad drives the open-loop harness over 1/2/4/8-shard
// deployments of the same data and pattern set, recording goodput,
// latency percentiles, and shed rate into BENCH_load.json. Explains are
// owner-routed, so each shard serves them from 1/N of the rows — that
// per-request work reduction, not just added parallelism, is what makes
// goodput scale with the shard count even on one machine. -smoke
// instead runs the 2-shard differential identity pass only.
func runBenchLoad(full bool) error {
	if smokeMode {
		return loadSmoke()
	}
	rows := 30000
	arrivals := 1500
	rate := 400.0
	if full {
		rows = 120000
		arrivals = 6000
		rate = 600.0
	}
	const maxQueue = 64
	shardCounts := []int{1, 2, 4, 8}

	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 3})
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		return err
	}
	const zipfS = 1.2
	report := benchLoadReport{
		Dataset:     "dblp",
		Rows:        rows,
		CPUs:        runtime.NumCPU(),
		ArrivalRate: rate,
		MaxQueue:    maxQueue,
		Zipf:        zipfFlag,
	}
	if zipfFlag {
		report.ZipfS = zipfS
	}
	stream := "round-robin"
	if zipfFlag {
		stream = fmt.Sprintf("zipf(s=%.1f)", zipfS)
	}
	fmt.Printf("DBLP, D=%d, open loop: %d arrivals at %.0f/s per shard count, %s stream, admission queue %d, GOMAXPROCS=%d\n\n",
		rows, arrivals, rate, stream, maxQueue, runtime.GOMAXPROCS(0))
	fmt.Printf("%-7s %9s %7s %6s %9s %9s %9s %9s %7s\n",
		"shards", "goodput", "shed%", "errs", "p50", "p95", "p99", "ok", "hit%")

	client := httpc.NewClient(8)
	for _, n := range shardCounts {
		d, err := newLoadDeployment(n, csv.Bytes(), maxQueue)
		if err != nil {
			return fmt.Errorf("%d shards: %w", n, err)
		}
		report.Patterns = d.patterns
		bodies, err := loadQuestionBodies(tab, d.psID, 64)
		if err != nil {
			d.close()
			return err
		}
		report.QuestionPool = len(bodies)
		// Warm each shard's group-by cache and the HTTP connections so
		// the measured window sees steady state, not cold start.
		for _, b := range bodies[:8] {
			resp, err := client.Post(d.coordURL+"/v1/explain", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
			}
		}
		res := openLoop(client, d.coordURL, bodies, loadPicks(arrivals, len(bodies), zipfS), rate, arrivals)
		if hits, misses, err := serveCacheCounters(client, d.coordURL, d.psID); err == nil {
			res.CacheHits, res.CacheMisses = hits, misses
			if hits+misses > 0 {
				res.CacheHitRate = float64(hits) / float64(hits+misses)
			}
		}
		d.close()
		res.Shards = n
		report.Results = append(report.Results, res)
		fmt.Printf("%-7d %7.1f/s %6.1f%% %6d %7.1fms %7.1fms %7.1fms %9d %6.1f%%\n",
			n, res.GoodputRPS, 100*res.ShedRate, res.Errors, res.P50Ms, res.P95Ms, res.P99Ms, res.OK, 100*res.CacheHitRate)
	}

	var g1, g4 float64
	for _, r := range report.Results {
		if r.Shards == 1 {
			g1 = r.GoodputRPS
		}
		if r.Shards == 4 {
			g4 = r.GoodputRPS
		}
	}
	if g1 > 0 {
		report.Goodput1To4X = g4 / g1
	}
	report.SuperUnity1To4 = report.Goodput1To4X > 1
	fmt.Printf("\ngoodput scaling 1->4 shards: %.2fx\n", report.Goodput1To4X)

	f, err := os.Create("BENCH_load.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_load.json")
	return nil
}

// loadSmoke is the -smoke differential identity pass: the same data,
// mine, questions, and appends against 1-shard and 2-shard deployments
// must produce byte-identical explain answers (modulo per-request work
// counters). No timing, no JSON output — CI gates on it cheaply.
func loadSmoke() error {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 2000, Seed: 3})
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		return err
	}
	d1, err := newLoadDeployment(1, csv.Bytes(), 256)
	if err != nil {
		return err
	}
	defer d1.close()
	d2, err := newLoadDeployment(2, csv.Bytes(), 256)
	if err != nil {
		return err
	}
	defer d2.close()
	if d1.patterns != d2.patterns {
		return fmt.Errorf("admitted pattern counts differ: 1 shard has %d, 2 shards have %d", d1.patterns, d2.patterns)
	}

	bodies, err := loadQuestionBodies(tab, d1.psID, 12)
	if err != nil {
		return err
	}
	bodies2, err := loadQuestionBodies(tab, d2.psID, 12)
	if err != nil {
		return err
	}
	client := httpc.NewClient(2)
	answered := 0
	for i := range bodies {
		v1, s1, err := loadExplainView(client, d1.coordURL, bodies[i])
		if err != nil {
			return err
		}
		v2, s2, err := loadExplainView(client, d2.coordURL, bodies2[i])
		if err != nil {
			return err
		}
		if s1 != s2 || v1 != v2 {
			return fmt.Errorf("question %d diverges between 1 and 2 shards:\n 1 shard (%d): %s\n 2 shards (%d): %s",
				i, s1, v1, s2, v2)
		}
		if s1 == http.StatusOK {
			answered++
		}
	}
	if answered == 0 {
		return fmt.Errorf("smoke pass is vacuous: no question produced explanations")
	}
	fmt.Printf("benchload smoke: %d/%d questions byte-identical across 1 and 2 shards (%d patterns)\n",
		answered, len(bodies), d1.patterns)
	return nil
}

// loadExplainView fetches one explain answer and renders it with the
// deployment-specific "stats" work counters stripped at every level —
// the comparison contract of the differential suite.
func loadExplainView(client *http.Client, url string, body []byte) (string, int, error) {
	resp, err := client.Post(url+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var v interface{}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", 0, err
	}
	stripStats(v)
	out, err := json.Marshal(v)
	return string(out), resp.StatusCode, err
}

// stripStats removes "stats" keys recursively.
func stripStats(v interface{}) {
	switch t := v.(type) {
	case map[string]interface{}:
		delete(t, "stats")
		for _, c := range t {
			stripStats(c)
		}
	case []interface{}:
		for _, c := range t {
			stripStats(c)
		}
	}
}
