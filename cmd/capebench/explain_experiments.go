package main

import (
	"fmt"
	"sort"
	"time"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
)

// lenientThresholds mine a large pattern pool for the explanation
// experiments, which control the pattern count N_P explicitly.
func lenientThresholds() pattern.Thresholds {
	return pattern.Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.1, GlobalSupport: 2}
}

// localPatternCount sums the local models across mined patterns — the
// paper's N_P.
func localPatternCount(ps []*pattern.Mined) int {
	n := 0
	for _, p := range ps {
		n += len(p.Locals)
	}
	return n
}

// subsetByLocalCount returns a prefix of patterns whose total local model
// count is at least target (or all patterns). Patterns are ordered by
// key, so prefixes nest across targets.
func subsetByLocalCount(ps []*pattern.Mined, target int) []*pattern.Mined {
	sorted := append([]*pattern.Mined(nil), ps...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Pattern.Key() < sorted[j].Pattern.Key()
	})
	total := 0
	for i, p := range sorted {
		total += len(p.Locals)
		if total >= target {
			return sorted[:i+1]
		}
	}
	return sorted
}

// runExplSweep mines once at lenient thresholds, generates questions, and
// times GenNaive vs GenOpt over increasing pattern subsets.
func runExplSweep(tab *engine.Table, attrs []string, questionAttrs []string,
	metric *distance.Metric, targets []int, numQuestions int) error {

	opt := mining.Options{
		MaxPatternSize: 3,
		Attributes:     attrs,
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	}
	mined, err := mining.ARPMine(tab, opt)
	if err != nil {
		return err
	}
	fmt.Printf("pattern pool: %d patterns, %d local models\n",
		len(mined.Patterns), localPatternCount(mined.Patterns))

	questions, err := exp.RandomQuestions(tab, questionAttrs, engine.AggSpec{Func: engine.Count}, numQuestions, 99)
	if err != nil {
		return err
	}

	// Interpret targets as eighths of the pool so the sweep spans it
	// regardless of absolute pool size.
	total := localPatternCount(mined.Patterns)
	for i, t := range targets {
		targets[i] = total * t / 8
	}

	fmt.Printf("%8s  %14s %14s  %8s\n", "N_P", "EXPLGEN-NAIVE", "EXPLGEN-OPT", "pruned")
	for _, target := range targets {
		subset := subsetByLocalCount(mined.Patterns, target)
		np := localPatternCount(subset)

		timeGen := func(gen func(explain.UserQuestion, engine.Relation, []*pattern.Mined, explain.Options) ([]explain.Explanation, *explain.Stats, error)) (time.Duration, int, error) {
			start := time.Now()
			pruned := 0
			for _, q := range questions {
				_, stats, err := gen(q, tab, subset, explain.Options{K: 10, Metric: metric})
				if err != nil {
					return 0, 0, err
				}
				pruned += stats.PrunedRefinements
			}
			return time.Since(start), pruned, nil
		}
		naive, _, err := timeGen(explain.GenNaive)
		if err != nil {
			return err
		}
		opt, pruned, err := timeGen(explain.GenOpt)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %14s %14s  %8d\n",
			np, naive.Round(time.Millisecond), opt.Round(time.Millisecond), pruned)
	}
	return nil
}

// runFig6a: explanation runtime vs N_P on DBLP.
func runFig6a(full bool) error {
	rows := 20000
	targets := []int{1, 2, 4, 8}
	if full {
		rows = 100000
		targets = []int{1, 2, 4, 6, 8}
	}
	fmt.Printf("DBLP, D=%d, question group-by (author, venue, year), 5 questions per point\n", rows)
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 3})
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	return runExplSweep(tab, []string{"author", "venue", "year"},
		[]string{"author", "venue", "year"}, metric, targets, 5)
}

// runFig6b: explanation runtime vs N_P on Crime.
func runFig6b(full bool) error {
	rows := 20000
	targets := []int{1, 2, 4, 8}
	if full {
		rows = 100000
		targets = []int{1, 2, 4, 6, 8}
	}
	fmt.Printf("Crime, D=%d, question group-by (type, community, year), 5 questions per point\n", rows)
	tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: rows, Seed: 3, NumAttrs: 6})
	metric := distance.NewMetric().
		SetFunc("year", distance.Numeric{Scale: 3}).
		SetFunc("community", distance.Numeric{Scale: 2})
	return runExplSweep(tab, []string{"type", "community", "year", "month"},
		[]string{"type", "community", "year"}, metric, targets, 5)
}

// runFig6c: explanation runtime vs the number of group-by attributes in
// the user question (A_φ).
func runFig6c(full bool) error {
	rows := 20000
	if full {
		rows = 100000
	}
	fmt.Printf("Crime, D=%d, 5 questions per point, full pattern pool\n", rows)
	tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: rows, Seed: 3, NumAttrs: 7})
	metric := distance.NewMetric().
		SetFunc("year", distance.Numeric{Scale: 3}).
		SetFunc("community", distance.Numeric{Scale: 2})
	attrs := []string{"type", "community", "year", "month", "district"}
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     attrs,
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return err
	}
	fmt.Printf("pattern pool: %d patterns, %d local models\n",
		len(mined.Patterns), localPatternCount(mined.Patterns))
	fmt.Printf("%6s  %14s %14s\n", "A_phi", "EXPLGEN-NAIVE", "EXPLGEN-OPT")
	for aPhi := 2; aPhi <= len(attrs); aPhi++ {
		questionAttrs := attrs[:aPhi]
		questions, err := exp.RandomQuestions(tab, questionAttrs, engine.AggSpec{Func: engine.Count}, 5, 99)
		if err != nil {
			return err
		}
		var naive, fast time.Duration
		for _, q := range questions {
			start := time.Now()
			if _, _, err := explain.GenNaive(q, tab, mined.Patterns, explain.Options{K: 10, Metric: metric}); err != nil {
				return err
			}
			naive += time.Since(start)
			start = time.Now()
			if _, _, err := explain.GenOpt(q, tab, mined.Patterns, explain.Options{K: 10, Metric: metric}); err != nil {
				return err
			}
			fast += time.Since(start)
		}
		fmt.Printf("%6d  %14s %14s\n", aPhi,
			naive.Round(time.Millisecond), fast.Round(time.Millisecond))
	}
	return nil
}

// runFig7: the full parameter-sensitivity grid of Figure 7.
func runFig7(full bool) error {
	rows := 10000
	numQ := 10
	if full {
		rows = 20000
		numQ = 10
	}
	tab := dataset.GenerateCrime(dataset.CrimeConfig{
		Rows: rows, Seed: 7, NumAttrs: 5, NumTypes: 6, NumCommunities: 12,
	})
	metric := distance.NewMetric().
		SetFunc("year", distance.Numeric{Scale: 3}).
		SetFunc("community", distance.Numeric{Scale: 2})
	spec := exp.SiteSpec{TypeAttr: "type", FragAttr: "community", PredAttr: "year", MinOutlierCount: 10}
	siteMining := mining.Options{
		MaxPatternSize: 3,
		Attributes:     spec.QuestionAttrs(),
		Thresholds:     pattern.Thresholds{Theta: 0.2, LocalSupport: 3, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []engine.AggFunc{engine.Count},
	}
	fmt.Printf("Crime, D=%d, %d injected questions, top-10 checked\n", rows, numQ)
	fmt.Printf("%6s %7s %7s  %10s\n", "theta", "lambda", "Delta", "precision")
	for _, theta := range []float64{0.1, 0.2, 0.35, 0.5} {
		for _, lambda := range []float64{0.2, 0.5} {
			for _, gsupp := range []int{2, 5, 15} {
				res, err := exp.RunPrecision(exp.PrecisionConfig{
					Table:      tab,
					Spec:       spec,
					SiteMining: siteMining,
					Mining: mining.Options{
						MaxPatternSize: 3,
						Attributes:     spec.QuestionAttrs(),
						Thresholds: pattern.Thresholds{
							Theta: theta, LocalSupport: 3, Lambda: lambda, GlobalSupport: gsupp,
						},
						AggFuncs: []engine.AggFunc{engine.Count},
					},
					NumQuestions: numQ,
					K:            10,
					Delta:        5,
					Metric:       metric,
				})
				if err != nil {
					return err
				}
				fmt.Printf("%6.2f %7.2f %7d  %9.0f%%\n",
					theta, lambda, gsupp, res.Precision()*100)
			}
		}
	}
	return nil
}
