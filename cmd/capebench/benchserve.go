package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/httpc"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/server"
)

// benchPrepareResult is one pattern-pool size of the question-prepare
// scaling sweep: the per-question cost of selecting relevant patterns
// through the prebuilt relevance index vs the linear structural scan,
// measured end to end through ExplainOpts on a warm explainer (the
// serve path), where at large pools the relevance scan dominates.
type benchPrepareResult struct {
	Patterns     int     `json:"patterns"`
	Buckets      int     `json:"buckets"`
	IndexBuildMs float64 `json:"indexBuildMs"`
	IndexedUsPQ  float64 `json:"indexedUsPerQuestion"`
	LinearUsPQ   float64 `json:"linearUsPerQuestion"`
	Speedup      float64 `json:"speedup"`
}

// benchServePcts is one latency distribution of the HTTP pass.
type benchServePcts struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50Ms"`
	P95Ms    float64 `json:"p95Ms"`
	P99Ms    float64 `json:"p99Ms"`
}

// benchServeReport is the schema of BENCH_serve.json.
type benchServeReport struct {
	Dataset            string               `json:"dataset"`
	Rows               int                  `json:"rows"`
	CPUs               int                  `json:"cpus"`
	MinedPatterns      int                  `json:"minedPatterns"`
	Prepare            []benchPrepareResult `json:"prepare"`
	PrepareSpeedup100K float64              `json:"prepareSpeedup100k"`
	QuestionPool       int                  `json:"questionPool"`
	Cold               benchServePcts       `json:"cold"`
	Warm               benchServePcts       `json:"warm"`
	ColdToWarmP99X     float64              `json:"coldToWarmP99x"`
	CacheHits          uint64               `json:"cacheHits"`
	CacheMisses        uint64               `json:"cacheMisses"`
	CacheHitRate       float64              `json:"cacheHitRate"`
}

// padPatterns grows a mined pattern pool to `total` entries with
// synthetic patterns over a disjoint attribute vocabulary. The pads are
// structurally irrelevant to every DBLP question — which is the point:
// a linear prepare pays a structural check per pad per question, while
// the index never visits their buckets. Deterministic under the seed.
func padPatterns(mined []*pattern.Mined, total int) []*pattern.Mined {
	out := append([]*pattern.Mined(nil), mined...)
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("s%02d", i)
	}
	rng := rand.New(rand.NewSource(17))
	for len(out) < total {
		k := 1 + rng.Intn(2)
		idx := rng.Perm(len(vocab))[:k+1]
		f := make([]string, k)
		for i := 0; i < k; i++ {
			f[i] = vocab[idx[i]]
		}
		out = append(out, &pattern.Mined{
			Pattern: pattern.Pattern{
				F: f, V: []string{vocab[idx[k]]},
				Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const,
			},
			Confidence: 1,
		})
	}
	return out
}

// measurePrepare times the warm serve path over one padded pool,
// indexed vs linear-scan, verifying the two produce identical answers.
func measurePrepare(tab *engine.Table, pool []*pattern.Mined, questions []explain.UserQuestion, reps int) (benchPrepareResult, error) {
	res := benchPrepareResult{Patterns: len(pool)}

	t0 := time.Now()
	idx := explain.NewIndex(pool)
	res.IndexBuildMs = float64(time.Since(t0)) / float64(time.Millisecond)
	res.Buckets = idx.Stats().Buckets

	opt := explain.Options{K: 10, Parallelism: 1}
	ex := explain.NewExplainer(tab, pool, opt)
	// Warm the group-by cache so the measured window isolates the
	// relevance scan + generation, as on a serving explainer.
	for _, q := range questions {
		if _, _, err := ex.ExplainOpts(q, opt); err != nil {
			return res, err
		}
	}
	linOpt := opt
	linOpt.LinearScan = true

	best := func(o explain.Options, check bool) (time.Duration, error) {
		var bestD time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			for qi, q := range questions {
				expls, _, err := ex.ExplainOpts(q, o)
				if err != nil {
					return 0, err
				}
				if check && r == 0 {
					ref, _, err := ex.ExplainOpts(q, linOpt)
					if err != nil {
						return 0, err
					}
					if !sameExplanations(expls, ref) {
						return 0, fmt.Errorf("indexed and linear-scan answers diverge on question %d at %d patterns", qi, len(pool))
					}
				}
			}
			if d := time.Since(start); r == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD, nil
	}
	dIdx, err := best(opt, true)
	if err != nil {
		return res, err
	}
	dLin, err := best(linOpt, false)
	if err != nil {
		return res, err
	}
	nq := len(questions)
	res.IndexedUsPQ = float64(dIdx) / float64(time.Microsecond) / float64(nq)
	// The identity check inside the first indexed rep also ran linear
	// calls, but timing uses best-of-reps so warm later reps win.
	res.LinearUsPQ = float64(dLin) / float64(time.Microsecond) / float64(nq)
	res.Speedup = res.LinearUsPQ / res.IndexedUsPQ
	return res, nil
}

// newServeServer brings up one in-process capeserver, loads the CSV and
// mines, returning the base URL and pattern-set id.
func newServeServer(csv []byte, cacheSize int) (url, psID string, shutdown func(), err error) {
	s := server.New()
	s.AnswerCacheSize = cacheSize
	ts := httptest.NewServer(s)
	fail := func(e error) (string, string, func(), error) {
		ts.Close()
		return "", "", nil, e
	}
	resp, err := http.Post(ts.URL+"/v1/tables?name=pub", "text/csv", bytes.NewReader(csv))
	if err != nil {
		return fail(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fail(fmt.Errorf("load table: status %d", resp.StatusCode))
	}
	body, _ := json.Marshal(loadMine())
	resp, err = http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	var mout struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&mout)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		return fail(fmt.Errorf("mine: status %d err %v", resp.StatusCode, err))
	}
	return ts.URL, mout.ID, ts.Close, nil
}

// uniqueQuestionBodies renders distinct explain bodies (RandomQuestions
// draws with replacement; duplicates would pollute the cold pass with
// accidental cache hits).
func uniqueQuestionBodies(tab *engine.Table, psID string, want int) ([][]byte, error) {
	qs, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, 4*want, 7)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var bodies [][]byte
	for _, q := range qs {
		tuple := make([]string, len(q.Values))
		for i, v := range q.Values {
			tuple[i] = v.String()
		}
		b, err := json.Marshal(server.ExplainRequest{
			Patterns: psID, GroupBy: q.GroupBy, Tuple: tuple, Dir: q.Dir.String(), K: 10, Parallelism: 1,
		})
		if err != nil {
			return nil, err
		}
		if seen[string(b)] {
			continue
		}
		seen[string(b)] = true
		bodies = append(bodies, b)
		if len(bodies) == want {
			break
		}
	}
	return bodies, nil
}

// timedPass fires every body once, sequentially, returning latencies.
func timedPass(client *http.Client, url string, bodies [][]byte) ([]float64, error) {
	lats := make([]float64, 0, len(bodies))
	for _, b := range bodies {
		t0 := time.Now()
		resp, err := client.Post(url+"/v1/explain", "application/json", bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("explain: status %d", resp.StatusCode)
		}
		lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
	}
	return lats, nil
}

func servePcts(lats []float64) benchServePcts {
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(p*float64(len(sorted)-1))]
	}
	return benchServePcts{Requests: len(lats), P50Ms: pct(0.50), P95Ms: pct(0.95), P99Ms: pct(0.99)}
}

// serveCacheCounters reads the pattern set's answer-cache counters from
// GET /v1.
func serveCacheCounters(client *http.Client, url, psID string) (hits, misses uint64, err error) {
	resp, err := client.Get(url + "/v1")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var status struct {
		PatternSets []struct {
			ID    string `json:"id"`
			Cache *struct {
				Hits   uint64 `json:"hits"`
				Misses uint64 `json:"misses"`
			} `json:"answerCache"`
		} `json:"patternSets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return 0, 0, err
	}
	for _, ps := range status.PatternSets {
		if ps.ID == psID && ps.Cache != nil {
			return ps.Cache.Hits, ps.Cache.Misses, nil
		}
	}
	return 0, 0, fmt.Errorf("pattern set %s reports no answer cache", psID)
}

// runBenchServe measures the two serve-path accelerations end to end:
// the relevance index (question prepare at 1K/10K/100K-pattern pools,
// indexed vs linear scan, answers verified identical) and the epoch-
// keyed answer cache (cold vs warm HTTP latency percentiles against one
// capeserver, hit counters from GET /v1). -smoke runs only the identity
// gates: indexed-vs-linear and cache-on-vs-off byte equality.
func runBenchServe(full bool) error {
	if smokeMode {
		return serveSmoke()
	}
	rows := 20000
	prepQ := 24
	reps := 3
	poolSizes := []int{1000, 10000, 100000}
	if full {
		rows = 100000
		prepQ = 48
		reps = 5
	}

	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 3})
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return err
	}
	questions, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, prepQ, 99)
	if err != nil {
		return err
	}
	report := benchServeReport{
		Dataset:       "dblp",
		Rows:          rows,
		CPUs:          runtime.NumCPU(),
		MinedPatterns: len(mined.Patterns),
	}
	fmt.Printf("DBLP, D=%d, %d mined patterns, %d prepare questions, GOMAXPROCS=%d\n\n",
		rows, len(mined.Patterns), prepQ, runtime.GOMAXPROCS(0))
	fmt.Printf("%-9s %8s %11s %12s %12s %8s\n",
		"patterns", "buckets", "index-build", "indexed", "linear", "speedup")
	for _, size := range poolSizes {
		pool := padPatterns(mined.Patterns, size)
		res, err := measurePrepare(tab, pool, questions, reps)
		if err != nil {
			return err
		}
		report.Prepare = append(report.Prepare, res)
		fmt.Printf("%-9d %8d %9.1fms %10.1fµs %10.1fµs %7.1fx\n",
			res.Patterns, res.Buckets, res.IndexBuildMs, res.IndexedUsPQ, res.LinearUsPQ, res.Speedup)
		if size == 100000 {
			report.PrepareSpeedup100K = res.Speedup
		}
	}

	// HTTP pass: one capeserver, caching on. The cold pass misses on
	// every distinct question; the warm passes replay the same pool and
	// hit the answer cache.
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		return err
	}
	url, psID, shutdown, err := newServeServer(csv.Bytes(), 0)
	if err != nil {
		return err
	}
	defer shutdown()
	bodies, err := uniqueQuestionBodies(tab, psID, 256)
	if err != nil {
		return err
	}
	report.QuestionPool = len(bodies)
	client := httpc.NewClient(1)
	cold, err := timedPass(client, url, bodies)
	if err != nil {
		return err
	}
	var warm []float64
	for pass := 0; pass < 3; pass++ {
		lats, err := timedPass(client, url, bodies)
		if err != nil {
			return err
		}
		warm = append(warm, lats...)
	}
	report.Cold = servePcts(cold)
	report.Warm = servePcts(warm)
	if report.Warm.P99Ms > 0 {
		report.ColdToWarmP99X = report.Cold.P99Ms / report.Warm.P99Ms
	}
	hits, misses, err := serveCacheCounters(client, url, psID)
	if err != nil {
		return err
	}
	report.CacheHits, report.CacheMisses = hits, misses
	if hits+misses > 0 {
		report.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("\nHTTP, %d-question pool: cold p50/p95/p99 = %.1f/%.1f/%.1fms, warm = %.2f/%.2f/%.2fms (%.0fx at p99)\n",
		len(bodies), report.Cold.P50Ms, report.Cold.P95Ms, report.Cold.P99Ms,
		report.Warm.P50Ms, report.Warm.P95Ms, report.Warm.P99Ms, report.ColdToWarmP99X)
	fmt.Printf("answer cache: %d hits / %d misses (%.1f%% hit rate)\n",
		hits, misses, 100*report.CacheHitRate)

	f, err := os.Create("BENCH_serve.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_serve.json")
	return nil
}

// serveSmoke is the -smoke identity gate: (1) indexed and linear-scan
// explanation generation agree on every question over a padded pool;
// (2) a caching capeserver and a cache-disabled one return byte-
// identical /v1/explain bodies, including on repeat requests served
// from the cache. No timing, no JSON output.
func serveSmoke() error {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 2000, Seed: 3})
	mined, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Thresholds:     lenientThresholds(),
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		return err
	}
	questions, err := exp.RandomQuestions(tab, []string{"author", "venue", "year"},
		engine.AggSpec{Func: engine.Count}, 12, 99)
	if err != nil {
		return err
	}
	pool := padPatterns(mined.Patterns, 2000)
	opt := explain.Options{K: 10, Parallelism: 1}
	linOpt := opt
	linOpt.LinearScan = true
	answered := 0
	for i, q := range questions {
		got, _, err := explain.GenOpt(q, tab, pool, opt)
		if err != nil {
			return err
		}
		ref, _, err := explain.GenOpt(q, tab, pool, linOpt)
		if err != nil {
			return err
		}
		if !sameExplanations(got, ref) {
			return fmt.Errorf("question %d: indexed and linear-scan answers diverge", i)
		}
		if len(got) > 0 {
			answered++
		}
	}
	if answered == 0 {
		return fmt.Errorf("smoke pass is vacuous: no question produced explanations")
	}

	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		return err
	}
	urlOn, psOn, closeOn, err := newServeServer(csv.Bytes(), 0)
	if err != nil {
		return err
	}
	defer closeOn()
	urlOff, psOff, closeOff, err := newServeServer(csv.Bytes(), -1)
	if err != nil {
		return err
	}
	defer closeOff()
	bodiesOn, err := uniqueQuestionBodies(tab, psOn, 12)
	if err != nil {
		return err
	}
	bodiesOff, err := uniqueQuestionBodies(tab, psOff, 12)
	if err != nil {
		return err
	}
	client := httpc.NewClient(1)
	fetch := func(url string, body []byte) (string, error) {
		resp, err := client.Post(url+"/v1/explain", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return "", err
		}
		return fmt.Sprintf("%d:%s", resp.StatusCode, buf.String()), nil
	}
	for i := range bodiesOn {
		onCold, err := fetch(urlOn, bodiesOn[i])
		if err != nil {
			return err
		}
		onWarm, err := fetch(urlOn, bodiesOn[i]) // answer-cache hit
		if err != nil {
			return err
		}
		off, err := fetch(urlOff, bodiesOff[i])
		if err != nil {
			return err
		}
		if onCold != onWarm {
			return fmt.Errorf("question %d: cached replay differs from its own first answer", i)
		}
		if onCold != off {
			return fmt.Errorf("question %d: cache-on and cache-off answers differ:\n on:  %s\n off: %s", i, onCold, off)
		}
	}
	hits, _, err := serveCacheCounters(client, urlOn, psOn)
	if err != nil {
		return err
	}
	if hits == 0 {
		return fmt.Errorf("smoke pass is vacuous: repeat requests produced no cache hits")
	}
	_ = psOff
	fmt.Printf("benchserve smoke: %d/%d questions answered; indexed==linear and cache-on==cache-off byte-identical (%d cache hits)\n",
		answered, len(questions), hits)
	return nil
}
