// Package cape is a Go implementation of CAPE (Counterbalancing with
// Aggregate Patterns for Explanations), the query-answer explanation
// system of "Going Beyond Provenance: Explaining Query Answers with
// Pattern-based Counterbalances" (SIGMOD 2019).
//
// CAPE answers user questions of the form "why is this aggregate query
// result surprisingly high/low?" by (1) mining aggregate regression
// patterns (ARPs) — trends like "each author publishes a roughly constant
// number of papers per year" that hold over the result of group-by
// aggregation — and (2) finding counterbalances: data points that deviate
// from a related pattern in the opposite direction of the user's
// observation, ranked by a deviation/distance score.
//
// The typical flow:
//
//	tab, _ := cape.ReadCSVFile("pubs.csv")
//	s := cape.NewSession(tab)
//	_ = s.Mine(cape.MiningOptions{MaxPatternSize: 3})
//	q := cape.Question{
//		GroupBy:  []string{"author", "venue", "year"},
//		Agg:      cape.Count(),
//		Values:   cape.Tuple{cape.String("AX"), cape.String("SIGKDD"), cape.Int(2007)},
//		AggValue: cape.Int(1),
//		Dir:      cape.Low,
//	}
//	expls, _, _ := s.Explain(q, cape.ExplainOptions{K: 10})
//
// The package re-exports the building blocks (relational engine,
// regression models, distance metrics, miners, generators, synthetic
// dataset generators) so downstream users can compose them directly.
package cape

import (
	"errors"
	"fmt"
	"io"

	"cape/internal/baseline"
	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/exp"
	"cape/internal/explain"
	"cape/internal/fd"
	"cape/internal/intervention"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/server"
	"cape/internal/sql"
	"cape/internal/value"
)

// ---- Values and tuples ----

// Value is a dynamically typed scalar (int64, float64, string, or NULL).
type Value = value.V

// Tuple is an ordered list of values.
type Tuple = value.Tuple

// Int wraps an int64 as a Value.
func Int(i int64) Value { return value.NewInt(i) }

// Float wraps a float64 as a Value.
func Float(f float64) Value { return value.NewFloat(f) }

// String wraps a string as a Value.
func String(s string) Value { return value.NewString(s) }

// Null is the NULL Value.
func Null() Value { return value.NewNull() }

// ---- Relational engine ----

// Table is an in-memory relation.
type Table = engine.Table

// Schema describes a table's columns.
type Schema = engine.Schema

// Column is one schema entry.
type Column = engine.Column

// Kind identifiers for Column.Kind.
const (
	KindNull   = value.Null
	KindInt    = value.Int
	KindFloat  = value.Float
	KindString = value.String
)

// NewTable creates an empty table with the given schema.
func NewTable(s Schema) *Table { return engine.NewTable(s) }

// ReadCSV loads a table from CSV data (header row required; fields are
// parsed to the most specific kind).
func ReadCSV(r io.Reader) (*Table, error) { return engine.ReadCSV(r) }

// ReadCSVFile loads a table from a CSV file.
func ReadCSVFile(path string) (*Table, error) { return engine.ReadCSVFile(path) }

// AggSpec is an aggregate expression such as count(*) or sum(amount).
type AggSpec = engine.AggSpec

// AggFunc identifies an aggregate function.
type AggFunc = engine.AggFunc

// Aggregate function identifiers.
const (
	AggCount = engine.Count
	AggSum   = engine.Sum
	AggAvg   = engine.Avg
	AggMin   = engine.Min
	AggMax   = engine.Max
)

// Count returns the count(*) aggregate spec.
func Count() AggSpec { return AggSpec{Func: engine.Count} }

// Sum returns the sum(attr) aggregate spec.
func Sum(attr string) AggSpec { return AggSpec{Func: engine.Sum, Arg: attr} }

// ---- Patterns and mining ----

// Pattern is an aggregate regression pattern [F] : V ~M~> agg(A).
type Pattern = pattern.Pattern

// MinedPattern is a pattern that holds globally, with its per-fragment
// regression models attached.
type MinedPattern = pattern.Mined

// LocalModel is the regression model of one fragment.
type LocalModel = pattern.LocalModel

// Thresholds bundles θ (local model quality), δ (local support),
// λ (global confidence) and Δ (global support).
type Thresholds = pattern.Thresholds

// DefaultThresholds returns sensible small-data defaults.
func DefaultThresholds() Thresholds { return pattern.DefaultThresholds() }

// Regression model families.
const (
	ModelConst = regress.Const
	ModelLin   = regress.Lin
)

// MiningOptions configures pattern mining.
type MiningOptions = mining.Options

// MiningResult is the outcome of a mining run.
type MiningResult = mining.Result

// FDSet stores functional dependencies for the Appendix-D optimizations.
type FDSet = fd.Set

// NewFDSet returns an empty functional-dependency set.
func NewFDSet() *FDSet { return fd.NewSet() }

// MinePatterns mines ARPs with the ARP-MINE algorithm (the paper's best
// variant: shared group-by queries, sort-order reuse, optional FD
// pruning).
func MinePatterns(t *Table, opt MiningOptions) (*MiningResult, error) {
	return mining.ARPMine(t, opt)
}

// MinePatternsNaive runs the brute-force miner (baseline of Figure 3a).
func MinePatternsNaive(t *Table, opt MiningOptions) (*MiningResult, error) {
	return mining.Naive(t, opt)
}

// MinePatternsShareGrp runs the shared-group-by miner.
func MinePatternsShareGrp(t *Table, opt MiningOptions) (*MiningResult, error) {
	return mining.ShareGrp(t, opt)
}

// MinePatternsCube runs the CUBE-based miner.
func MinePatternsCube(t *Table, opt MiningOptions) (*MiningResult, error) {
	return mining.CubeMine(t, opt)
}

// ---- Questions and explanations ----

// Question is a user question (Definition 1): an aggregate query, one of
// its result tuples, and a direction.
type Question = explain.UserQuestion

// Direction of the user's surprise.
type Direction = explain.Direction

// Directions.
const (
	Low  = explain.Low
	High = explain.High
)

// Explanation is a ranked counterbalance (Definition 7 plus score
// breakdown).
type Explanation = explain.Explanation

// ExplainOptions configures explanation generation. Parallelism fans
// the (relevant pattern, refinement) pairs across a worker pool; the
// ranked result is identical to the sequential run.
type ExplainOptions = explain.Options

// ExplainStats reports the work performed by a generation run.
type ExplainStats = explain.Stats

// QuestionFromRow builds a question from one row of an aggregate query
// result whose schema is (groupBy..., agg).
func QuestionFromRow(groupBy []string, agg AggSpec, row Tuple, dir Direction) (Question, error) {
	return explain.QuestionFromRow(groupBy, agg, row, dir)
}

// Explain generates the top-k counterbalancing explanations using the
// bound-pruned generator.
func Explain(q Question, t *Table, patterns []*MinedPattern, opt ExplainOptions) ([]Explanation, *ExplainStats, error) {
	return explain.Generate(q, t, patterns, opt)
}

// ExplainNaive generates explanations with the brute-force Algorithm 1.
func ExplainNaive(q Question, t *Table, patterns []*MinedPattern, opt ExplainOptions) ([]Explanation, *ExplainStats, error) {
	return explain.GenNaive(q, t, patterns, opt)
}

// BatchItem is the outcome of one question of a batch: its ranked
// explanations and stats, or the per-item error that prevented them.
type BatchItem = explain.BatchItem

// ExplainBatch answers many questions over one relation and pattern set
// in a single pass. Each question's output is byte-identical to calling
// Explain on it alone, but the batch shares the relevant-pattern scan
// across questions with the same (group-by, aggregate) signature, holds
// every γ aggregate result in one group-by cache, and fans the
// questions across opt.Parallelism workers. Results and stats align
// positionally with qs. Questions that fail individually contribute a
// nil row plus a wrapped, indexed error in the joined error; the other
// questions still get answers. Use ExplainBatchItems for structured
// per-item errors.
func ExplainBatch(qs []Question, t *Table, patterns []*MinedPattern, opt ExplainOptions) ([][]Explanation, []*ExplainStats, error) {
	items := explain.GenerateBatch(qs, t, patterns, opt)
	expls := make([][]Explanation, len(items))
	stats := make([]*ExplainStats, len(items))
	var errs []error
	for i, it := range items {
		expls[i], stats[i] = it.Explanations, it.Stats
		if it.Err != nil {
			errs = append(errs, fmt.Errorf("question %d: %w", i, it.Err))
		}
	}
	return expls, stats, errors.Join(errs...)
}

// ExplainBatchItems is ExplainBatch returning one BatchItem per
// question, so callers (like the HTTP batch endpoint) can map each
// question's error to a per-item status instead of a joined error.
func ExplainBatchItems(qs []Question, t *Table, patterns []*MinedPattern, opt ExplainOptions) []BatchItem {
	return explain.GenerateBatch(qs, t, patterns, opt)
}

// Explainer answers many questions over one relation and pattern set,
// sharing the group-by results across questions in a sharded cache with
// duplicate-computation suppression. Safe for concurrent use.
type Explainer = explain.Explainer

// NewExplainer builds a warm-cache explainer; opt supplies defaults for
// every question.
func NewExplainer(t *Table, patterns []*MinedPattern, opt ExplainOptions) *Explainer {
	return explain.NewExplainer(t, patterns, opt)
}

// ---- Generalization explanations (the paper's future-work extension) ----

// Generalization is an explanation by drill-up: a coarser aggregate
// deviating in the question's own direction.
type Generalization = explain.Generalization

// Generalize finds the question's same-direction deviations at coarser
// granularities (strict subsets of the group-by), strongest relative
// deviation first.
func Generalize(q Question, t *Table, patterns []*MinedPattern, opt ExplainOptions) ([]Generalization, error) {
	return explain.Generalize(q, t, patterns, opt)
}

// ---- Intervention explainer (provenance-restricted comparison) ----

// InterventionExplanation is a predicate over the question tuple's
// provenance whose removal moves the aggregate toward the expected value.
type InterventionExplanation = intervention.Explanation

// InterventionOptions configures the intervention explainer.
type InterventionOptions = intervention.Options

// ErrInterventionLowQuestion is returned for "why low?" questions:
// removing provenance tuples cannot raise a count — the limitation CAPE's
// counterbalances exist to overcome.
var ErrInterventionLowQuestion = intervention.ErrLowQuestion

// ExplainIntervention runs the simplified Scorpion-style explainer. It
// only handles "why high?" questions and only sees the provenance.
func ExplainIntervention(q Question, t *Table, opt InterventionOptions) ([]InterventionExplanation, error) {
	return intervention.Explain(q, t, opt)
}

// ---- Baseline explainer (Appendix A.2) ----

// BaselineExplanation is a counterbalance from the question's own query
// result, scored without patterns.
type BaselineExplanation = baseline.Explanation

// BaselineOptions configures the baseline explainer.
type BaselineOptions = baseline.Options

// ExplainBaseline runs the pattern-blind comparison method.
func ExplainBaseline(q Question, t *Table, opt BaselineOptions) ([]BaselineExplanation, error) {
	return baseline.Explain(q, t, opt)
}

// ---- Distance metrics ----

// Metric supplies per-attribute distance functions and weights
// (Definition 9).
type Metric = distance.Metric

// DistanceFunc measures the distance of two attribute values in [0, 1].
type DistanceFunc = distance.Func

// Distance function implementations.
type (
	// CategoricalDistance: 0 if equal, 1 otherwise.
	CategoricalDistance = distance.Categorical
	// NumericDistance: |a−b|/Scale capped at 1.
	NumericDistance = distance.Numeric
	// ClassedDistance: domain partitioned into classes.
	ClassedDistance = distance.Classed
)

// NewMetric returns a metric with categorical distances and equal
// weights.
func NewMetric() *Metric { return distance.NewMetric() }

// ---- HTTP service ----

// NewHTTPHandler returns the CAPE HTTP API (tables / query / mine /
// explain / generalize / intervene / baseline) as an http.Handler, ready
// to mount in any server. See cmd/capeserver for a standalone binary.
func NewHTTPHandler() *server.Server { return server.New() }

// HTTPServer is the CAPE HTTP API handler type.
type HTTPServer = server.Server

// ---- Synthetic datasets ----

// DBLPConfig parameterizes the synthetic bibliography generator.
type DBLPConfig = dataset.DBLPConfig

// CrimeConfig parameterizes the synthetic crime-report generator.
type CrimeConfig = dataset.CrimeConfig

// GroundTruth records an injected outlier/counterbalance pair.
type GroundTruth = dataset.GroundTruth

// GenerateDBLP produces a synthetic Pub(author, pubid, year, venue)
// relation with planted constant/linear publication trends.
func GenerateDBLP(cfg DBLPConfig) *Table { return dataset.GenerateDBLP(cfg) }

// GenerateCrime produces a synthetic crime relation with 3–11 attributes
// and built-in functional dependencies.
func GenerateCrime(cfg CrimeConfig) *Table { return dataset.GenerateCrime(cfg) }

// RunningExample builds the paper's introduction scenario (AX's missing
// SIGKDD 2007 papers counterbalanced by ICDE 2007).
func RunningExample() *Table { return dataset.RunningExample() }

// InjectCounterbalance plants a ground-truth outlier/counterbalance pair
// for precision experiments (Section 5.3).
func InjectCounterbalance(t *Table, attrs []string, outlier, counter Tuple, delta int, dir string) (*Table, GroundTruth, error) {
	return dataset.InjectCounterbalance(t, attrs, outlier, counter, delta, dir)
}

// ---- SQL ----

// SQLCatalog resolves table names for SQL execution.
type SQLCatalog = sql.Catalog

// RunSQL parses and executes a query of the supported dialect
// (single-table SELECT with WHERE / GROUP BY / ORDER BY / LIMIT) against
// the catalog.
func RunSQL(query string, cat SQLCatalog) (*Table, error) {
	return sql.Run(query, cat)
}

// ParseAggregateQuery extracts the (group-by attributes, aggregate) pair
// from a query of the shape a user question requires, e.g.
// "SELECT author, year, venue, count(*) FROM pub GROUP BY author, year,
// venue".
func ParseAggregateQuery(query string) (groupBy []string, agg AggSpec, err error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, AggSpec{}, err
	}
	return sql.AggregateQuery(stmt)
}

// ---- Ground-truth precision experiments (Section 5.3) ----

// SiteSpec describes where ground-truth counterbalances may be planted.
type SiteSpec = exp.SiteSpec

// PrecisionConfig parameterizes a ground-truth precision run.
type PrecisionConfig = exp.PrecisionConfig

// PrecisionResult reports recovered ground truths.
type PrecisionResult = exp.PrecisionResult

// RunPrecisionExperiment plants outlier/counterbalance pairs, re-mines,
// and measures how many planted counterbalances appear in the top-K
// explanations (the Figure-7 methodology).
func RunPrecisionExperiment(cfg PrecisionConfig) (PrecisionResult, error) {
	return exp.RunPrecision(cfg)
}
