module cape

go 1.24
