// Command service demonstrates CAPE as an HTTP microservice: it mounts
// the API handler on a local listener, loads the running example, mines
// a pattern set, asks the paper's question over the wire, and prints the
// JSON responses — the whole offline/online lifecycle as a client would
// drive it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"cape"
)

func main() {
	// Mount the API on an ephemeral local listener.
	srv := cape.NewHTTPHandler()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("CAPE service listening on %s\n\n", ts.URL)

	// 1. Load the running example as CSV over the wire.
	var csv bytes.Buffer
	if err := cape.RunningExample().WriteCSV(&csv); err != nil {
		log.Fatal(err)
	}
	post(ts.URL+"/v1/tables?name=pub", "text/csv", csv.Bytes())
	fmt.Println("loaded table 'pub'")

	// 2. Explore with SQL.
	out := postJSON(ts.URL+"/v1/query", map[string]interface{}{
		"sql": "SELECT venue, count(*) AS n FROM pub GROUP BY venue ORDER BY n DESC",
	})
	fmt.Printf("\npublications per venue: %s\n", compact(out))

	// 3. Mine patterns offline.
	mineResp := postJSON(ts.URL+"/v1/mine", map[string]interface{}{
		"table":          "pub",
		"maxPatternSize": 3,
		"theta":          0.5, "localSupport": 3, "lambda": 0.3, "globalSupport": 2,
		"aggregates": []string{"count"},
	})
	var mined struct {
		ID       string `json:"id"`
		Patterns int    `json:"patterns"`
	}
	if err := json.Unmarshal(mineResp, &mined); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined pattern set %s with %d patterns\n", mined.ID, mined.Patterns)

	// 4. Ask the paper's question online.
	explainResp := postJSON(ts.URL+"/v1/explain", map[string]interface{}{
		"patterns": mined.ID,
		"groupBy":  []string{"author", "venue", "year"},
		"tuple":    []string{"AX", "SIGKDD", "2007"},
		"dir":      "low",
		"k":        3,
		"numeric":  map[string]float64{"year": 4},
	})
	var expl struct {
		Question     string `json:"question"`
		Explanations []struct {
			Narration string  `json:"narration"`
			Score     float64 `json:"score"`
		} `json:"explanations"`
	}
	if err := json.Unmarshal(explainResp, &expl); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", expl.Question)
	for i, e := range expl.Explanations {
		fmt.Printf("  %d. (score %.2f) %s\n", i+1, e.Score, e.Narration)
	}
}

func post(url, contentType string, body []byte) []byte {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, out)
	}
	return out
}

func postJSON(url string, body interface{}) []byte {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	return post(url, "application/json", data)
}

func compact(raw []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}
