// Command crime runs the public-safety scenario from the paper's
// evaluation (Tables 5 and 7): a synthetic Chicago-style crime dataset,
// the question "why is the number of crimes of type T in community area C
// in year Y low?", and CAPE's pattern-based counterbalances next to the
// pattern-blind baseline. It also demonstrates FD-aware mining: the
// geographic attributes carry real functional dependencies.
package main

import (
	"fmt"
	"log"
	"time"

	"cape"
)

var questionAttrs = []string{"type", "community", "year"}

func main() {
	fmt.Println("Generating synthetic crime reports (12000 rows, 7 attributes)...")
	tab := cape.GenerateCrime(cape.CrimeConfig{Rows: 12000, Seed: 7, NumAttrs: 7})

	// Mine the clean data once to locate a fragment where the pattern
	// "per (community, type), yearly counts are constant" genuinely
	// holds — that is the trend the planted outlier will violate.
	clean := mine(tab)
	sites := injectionSites(tab, clean.Patterns)
	if len(sites) == 0 {
		log.Fatal("no suitable injection site found")
	}

	// Some spikes destroy the receiving fragment's own goodness-of-fit
	// (the sensitivity Figure 7 of the paper measures); try sites until
	// the planted counterbalance survives re-mining.
	var (
		s        *cape.Session
		injected *cape.Table
		gt       cape.GroundTruth
		outlier  cape.Tuple
		expls    []cape.Explanation
		stats    *cape.ExplainStats
	)
	for _, site := range sites {
		var err error
		injected, gt, err = cape.InjectCounterbalance(tab, questionAttrs, site[0], site[1], 5, "low")
		if err != nil {
			log.Fatal(err)
		}
		s = cape.NewSession(injected)
		s.SetMetric(metric())
		start := time.Now()
		if err := s.Mine(miningOptions()); err != nil {
			log.Fatal(err)
		}
		mineTime := time.Since(start)
		outlier = site[0]
		expls, stats, err = s.Ask(questionAttrs, cape.Count(), outlier, cape.Low, cape.ExplainOptions{K: 200})
		if err != nil {
			log.Fatal(err)
		}
		if rankOf(expls, gt.CounterTuple) < 0 {
			continue // counterbalance did not survive; try the next site
		}
		res := s.MiningResult()
		fmt.Printf("Planted: %v lost 5 reports; they shifted into %v\n\n", gt.OutlierTuple, gt.CounterTuple)
		fmt.Printf("Mined %d patterns in %v (%d candidates, %d (F,V) pairs FD-pruned, %d FDs known)\n\n",
			len(s.Patterns()), mineTime.Round(time.Millisecond),
			res.Candidates, res.SkippedByFD, res.FDs.Len())
		break
	}
	if expls == nil || rankOf(expls, gt.CounterTuple) < 0 {
		log.Fatal("no injection site produced a surviving counterbalance")
	}

	fmt.Printf("Question: why is count(%s, community %d, %d) low?\n\n",
		outlier[0], outlier[1].Int(), outlier[2].Int())
	fmt.Printf("CAPE top-10 (%d relevant patterns, %d candidates):\n",
		stats.RelevantPatterns, stats.Candidates)
	for i, e := range expls {
		if i == 10 {
			break
		}
		marker := ""
		if tupleCovers(e, gt.CounterTuple) {
			marker = "   ← planted counterbalance"
		}
		fmt.Printf("  %d. %s%s\n", i+1, e, marker)
	}
	if r := rankOf(expls, gt.CounterTuple); r >= 10 {
		fmt.Printf("  ... planted counterbalance ranked %d of %d: %s\n", r+1, len(expls), expls[r])
	}

	q := cape.Question{GroupBy: questionAttrs, Agg: cape.Count(), Values: outlier,
		AggValue: aggValueOf(injected, questionAttrs, outlier), Dir: cape.Low}
	base, err := cape.ExplainBaseline(q, injected, cape.BaselineOptions{K: 5, Metric: metric()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBaseline top-5 (pattern-blind: prefers chronically high groups, outliers or not):")
	for i, e := range base {
		fmt.Printf("  %d. %s\n", i+1, e)
	}
}

func metric() *cape.Metric {
	return cape.NewMetric().
		SetFunc("year", cape.NumericDistance{Scale: 3}).
		SetFunc("community", cape.NumericDistance{Scale: 2}).
		SetFunc("month", cape.NumericDistance{Scale: 3})
}

func miningOptions() cape.MiningOptions {
	return cape.MiningOptions{
		MaxPatternSize: 3,
		Attributes:     []string{"type", "community", "year", "month", "district"},
		Thresholds:     cape.Thresholds{Theta: 0.2, LocalSupport: 3, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
		UseFDs:         true,
	}
}

func mine(tab *cape.Table) *cape.MiningResult {
	res, err := cape.MinePatterns(tab, miningOptions())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// rankOf returns the 0-based rank of the first explanation covering the
// ground-truth counterbalance, or -1.
func rankOf(expls []cape.Explanation, gtTuple cape.Tuple) int {
	for i, e := range expls {
		if tupleCovers(e, gtTuple) {
			return i
		}
	}
	return -1
}

// tupleCovers reports whether the explanation tuple matches the
// ground-truth counterbalance on all attributes they share.
func tupleCovers(e cape.Explanation, gtTuple cape.Tuple) bool {
	gtAttrs := questionAttrs
	n := 0
	for i, a := range e.Attrs {
		for j, ga := range gtAttrs {
			if a == ga {
				if e.Tuple[i].String() != gtTuple[j].String() {
					return false
				}
				n++
			}
		}
	}
	return n == len(gtAttrs)
}

// injectionSites lists (outlier, counter) candidates: a (type, community)
// fragment on which the pattern [community, type] : year ~Const~>
// count(*) holds locally, a dense year inside it to deplete, and a
// different crime type in the same community and year to receive the
// shifted reports.
func injectionSites(tab *cape.Table, patterns []*cape.MinedPattern) (sites [][2]cape.Tuple) {
	var target, coarse *cape.MinedPattern
	for _, p := range patterns {
		switch p.Pattern.Key() {
		case "community,type|year|count(*)|Const":
			target = p
		case "community|year|count(*)|Const":
			coarse = p
		}
	}
	if target == nil || coarse == nil {
		return nil
	}
	grouped, err := tab.GroupBy(questionAttrs, []cape.AggSpec{cape.Count()})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range grouped.Rows() {
		if row[3].Int() < 12 {
			continue
		}
		frag := cape.Tuple{row[1], row[0]} // canonical F order: community, type
		if _, ok := target.Local(frag); !ok {
			continue
		}
		// The community itself must follow the coarser yearly pattern so
		// that [community]: year is relevant and its refinement reaches
		// the other crime type.
		if _, ok := coarse.Local(cape.Tuple{row[1]}); !ok {
			continue
		}
		// A different type, same community and year, whose fragment also
		// holds locally — the cross-category counterbalance the paper's
		// examples feature.
		for _, other := range grouped.Rows() {
			if !cape.Tuple(other[1:3]).Equal(cape.Tuple(row[1:3])) ||
				other[0].Str() == row[0].Str() {
				continue
			}
			otherFrag := cape.Tuple{other[1], other[0]}
			lm, ok := target.Local(otherFrag)
			if !ok {
				continue
			}
			// Receive the shifted reports in a year at or just below the
			// fragment mean: the spike then reads as a clean positive
			// deviation instead of destroying the fragment's fit.
			mu := lm.Model.Predict(nil)
			if c := float64(other[3].Int()); mu < 6 || c > mu || c < mu-2 {
				continue
			}
			sites = append(sites, [2]cape.Tuple{
				{row[0], row[1], row[2]},
				{other[0], other[1], other[2]},
			})
			if len(sites) >= 25 {
				return sites
			}
		}
	}
	return sites
}

func aggValueOf(t *cape.Table, groupBy []string, values cape.Tuple) cape.Value {
	g, err := t.GroupBy(groupBy, []cape.AggSpec{cape.Count()})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range g.Rows() {
		if cape.Tuple(row[:len(groupBy)]).Equal(values) {
			return row[len(groupBy)]
		}
	}
	log.Fatalf("group %v not found", values)
	return cape.Null()
}
