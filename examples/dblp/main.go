// Command dblp runs the bibliography scenario from the paper's
// evaluation: a synthetic DBLP dataset with per-author publication
// trends, a planted outlier ("author published unusually few papers in
// venue X in year Y") with a known counterbalance, and a side-by-side
// comparison of CAPE's pattern-based explanations (Table 4 style) with
// the pattern-blind baseline (Table 6 style).
package main

import (
	"fmt"
	"log"
	"time"

	"cape"
)

func main() {
	fmt.Println("Generating synthetic DBLP (8000 publications)...")
	tab := cape.GenerateDBLP(cape.DBLPConfig{Rows: 8000, Seed: 2019})

	// Find a well-supported (author, venue) pair to plant the outlier in:
	// the author's publications in that venue drop in one year, with the
	// missing papers showing up in another venue the same year.
	grouped, err := tab.GroupBy([]string{"author", "venue", "year"}, []cape.AggSpec{cape.Count()})
	if err != nil {
		log.Fatal(err)
	}
	var outlier, counter cape.Tuple
	for _, row := range grouped.Rows() {
		if row[3].Int() >= 6 {
			outlier = cape.Tuple{row[0], row[1], row[2]}
			break
		}
	}
	if outlier == nil {
		log.Fatal("no sufficiently dense group found")
	}
	// The counterbalance venue: any other venue the author published in
	// that year.
	for _, row := range grouped.Rows() {
		if row[0].Str() == outlier[0].Str() && row[2].Int() == outlier[2].Int() &&
			row[1].Str() != outlier[1].Str() {
			counter = cape.Tuple{row[0], row[1], row[2]}
			break
		}
	}
	if counter == nil {
		log.Fatal("no counterbalance venue found")
	}
	attrs := []string{"author", "venue", "year"}
	injected, gt, err := cape.InjectCounterbalance(tab, attrs, outlier, counter, 4, "low")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Planted outlier: %v lost 4 papers; they moved to %v\n\n", gt.OutlierTuple, gt.CounterTuple)

	// Mine patterns offline.
	start := time.Now()
	s := cape.NewSession(injected)
	s.SetMetric(cape.NewMetric().SetFunc("year", cape.NumericDistance{Scale: 4}))
	err = s.Mine(cape.MiningOptions{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "venue", "year"},
		Thresholds:     cape.Thresholds{Theta: 0.3, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 5},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mined %d patterns in %v\n\n", len(s.Patterns()), time.Since(start).Round(time.Millisecond))

	// Ask why the planted group is low.
	fmt.Printf("Question: why is count(%s, %s, %d) low?\n\n",
		outlier[0], outlier[1], outlier[2].Int())
	expls, stats, err := s.Ask(attrs, cape.Count(), outlier, cape.Low, cape.ExplainOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CAPE top-5 (of %d candidates, %d refinements pruned):\n",
		stats.Candidates, stats.PrunedRefinements)
	hit := false
	for i, e := range expls {
		fmt.Printf("  %d. %s\n", i+1, e)
		if tupleMatches(e, gt.CounterTuple) {
			hit = true
		}
	}
	if hit {
		fmt.Println("  ✓ the planted counterbalance is in the top-5")
	}

	q := cape.Question{GroupBy: attrs, Agg: cape.Count(), Values: outlier,
		AggValue: mustAggValue(injected, attrs, outlier), Dir: cape.Low}
	base, err := cape.ExplainBaseline(q, injected, cape.BaselineOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBaseline top-5 (pattern-blind, provenance-result only):")
	for i, e := range base {
		fmt.Printf("  %d. %s\n", i+1, e)
	}
}

// tupleMatches reports whether the explanation's tuple covers the
// ground-truth counterbalance values (the explanation may have a coarser
// or finer schema).
func tupleMatches(e cape.Explanation, gtTuple cape.Tuple) bool {
	want := map[string]bool{}
	for _, v := range gtTuple {
		want[v.String()] = true
	}
	n := 0
	for _, v := range e.Tuple {
		if want[v.String()] {
			n++
		}
	}
	return n >= len(gtTuple)
}

func mustAggValue(t *cape.Table, groupBy []string, values cape.Tuple) cape.Value {
	g, err := t.GroupBy(groupBy, []cape.AggSpec{cape.Count()})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range g.Rows() {
		if cape.Tuple(row[:len(groupBy)]).Equal(values) {
			return row[len(groupBy)]
		}
	}
	log.Fatalf("group %v not found", values)
	return cape.Null()
}
