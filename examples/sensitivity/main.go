// Command sensitivity reproduces a slice of the paper's Figure 7: it
// plants ground-truth outlier/counterbalance pairs into a synthetic
// crime dataset and measures, for a sweep of the local model quality
// threshold θ and global confidence λ, what fraction of the planted
// counterbalances CAPE recovers in its top-10 — showing that low θ with
// moderate λ recovers the most ground truths, as the paper recommends.
//
// This example uses the internal experiment harness through the public
// facade; the full sweep (varying Δ as well) lives in cmd/capebench
// fig7.
package main

import (
	"fmt"
	"log"

	"cape"
)

func main() {
	fmt.Println("Generating crime data and planting counterbalances...")
	tab := cape.GenerateCrime(cape.CrimeConfig{
		Rows: 10000, Seed: 7, NumAttrs: 5, NumTypes: 6, NumCommunities: 12,
	})

	metric := cape.NewMetric().
		SetFunc("year", cape.NumericDistance{Scale: 3}).
		SetFunc("community", cape.NumericDistance{Scale: 2})

	// Site discovery is pinned to one lenient setting so every sweep
	// point measures the same planted ground truths.
	siteMining := cape.MiningOptions{
		MaxPatternSize: 3,
		Attributes:     []string{"type", "community", "year"},
		Thresholds:     cape.Thresholds{Theta: 0.2, LocalSupport: 3, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
	}

	fmt.Printf("%8s %8s %10s\n", "theta", "lambda", "precision")
	for _, theta := range []float64{0.1, 0.2, 0.35, 0.5, 0.7} {
		for _, lambda := range []float64{0.2, 0.5} {
			res, err := cape.RunPrecisionExperiment(cape.PrecisionConfig{
				Table: tab,
				Spec: cape.SiteSpec{
					TypeAttr: "type", FragAttr: "community", PredAttr: "year",
					MinOutlierCount: 10,
				},
				SiteMining: siteMining,
				Mining: cape.MiningOptions{
					MaxPatternSize: 3,
					Attributes:     []string{"type", "community", "year"},
					Thresholds: cape.Thresholds{
						Theta: theta, LocalSupport: 3, Lambda: lambda, GlobalSupport: 5,
					},
					AggFuncs: []cape.AggFunc{cape.AggCount},
				},
				NumQuestions: 10,
				K:            10,
				Delta:        5,
				Metric:       metric,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f %8.2f %9.0f%% (%d/%d)\n",
				theta, lambda, res.Precision()*100, res.Found, res.Questions)
		}
	}
	fmt.Println("\nAs in the paper: precision degrades as θ grows (patterns vanish),")
	fmt.Println("and moderate confidence thresholds beat strict ones.")
}
