// Command quickstart runs CAPE end-to-end on the paper's running example:
// author AX publishes ~4 papers per venue per year, but in 2007 had only
// one SIGKDD paper — because (as CAPE discovers) seven papers went to
// ICDE that year instead. It mines aggregate regression patterns, asks
// "why is AX's SIGKDD 2007 count low?", and prints the ranked
// counterbalancing explanations next to the pattern-blind baseline.
package main

import (
	"fmt"
	"log"

	"cape"
)

func main() {
	tab := cape.RunningExample()
	fmt.Printf("Pub relation: %d rows, schema %v\n\n", tab.NumRows(), tab.Schema().Names())

	// 1. Mine aggregate regression patterns offline.
	s := cape.NewSession(tab)
	s.SetMetric(cape.NewMetric().SetFunc("year", cape.NumericDistance{Scale: 4}))
	err := s.Mine(cape.MiningOptions{
		MaxPatternSize: 3,
		Thresholds:     cape.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mined %d globally-holding patterns, e.g.:\n", len(s.Patterns()))
	for i, p := range s.Patterns() {
		if i == 4 {
			break
		}
		fmt.Printf("  %s  (confidence %.2f, %d local models)\n",
			p.Pattern, p.Confidence, p.GlobalSupport())
	}

	// 2. Ask the paper's question φ₀.
	fmt.Println("\nQuestion: why did AX publish only 1 SIGKDD paper in 2007?")
	expls, stats, err := s.Ask(
		[]string{"author", "venue", "year"},
		cape.Count(),
		cape.Tuple{cape.String("AX"), cape.String("SIGKDD"), cape.Int(2007)},
		cape.Low,
		cape.ExplainOptions{K: 5},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(%d relevant patterns, %d candidates checked, %d refinements pruned)\n\n",
		stats.RelevantPatterns, stats.Candidates, stats.PrunedRefinements)
	fmt.Println("Top counterbalancing explanations:")
	for i, e := range expls {
		fmt.Printf("  %d. %s\n", i+1, e)
	}

	// 3. Contrast with the pattern-blind baseline (Appendix A.2).
	q := cape.Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      cape.Count(),
		Values:   cape.Tuple{cape.String("AX"), cape.String("SIGKDD"), cape.Int(2007)},
		AggValue: cape.Int(1),
		Dir:      cape.Low,
	}
	base, err := cape.ExplainBaseline(q, tab, cape.BaselineOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBaseline (no patterns) for comparison:")
	for i, e := range base {
		fmt.Printf("  %d. %s\n", i+1, e)
	}

	// 4. The provenance-restricted intervention explainer cannot answer
	// this question at all — the paper's motivation in one error message.
	if _, err := cape.ExplainIntervention(q, tab, cape.InterventionOptions{}); err != nil {
		fmt.Printf("\nIntervention explainer (provenance-only): %v\n", err)
	}

	// 5. Explanations by generalization: does the low SIGKDD count
	// reflect a broader dip? (Here it does not — the totals are exactly
	// counterbalanced, which is itself informative.)
	gens, err := cape.Generalize(q, tab, s.Patterns(), cape.ExplainOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	if len(gens) == 0 {
		fmt.Println("\nNo coarser-granularity dip: the missing SIGKDD papers were fully counterbalanced.")
	} else {
		fmt.Println("\nGeneralizations (same-direction coarser deviations):")
		for i, g := range gens {
			fmt.Printf("  %d. %s\n", i+1, g)
		}
	}
}
