package cape

import (
	"strings"
	"testing"
)

func exampleSession(t testing.TB) *Session {
	s := NewSession(RunningExample())
	s.SetMetric(NewMetric().SetFunc("year", NumericDistance{Scale: 4}))
	err := s.Mine(MiningOptions{
		MaxPatternSize: 3,
		Thresholds:     Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionEndToEnd(t *testing.T) {
	s := exampleSession(t)
	if len(s.Patterns()) == 0 {
		t.Fatal("no patterns mined")
	}
	if s.MiningResult() == nil || s.MiningResult().Candidates == 0 {
		t.Error("mining result statistics missing")
	}
	expls, stats, err := s.Ask(
		[]string{"author", "venue", "year"},
		Count(),
		Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		Low,
		ExplainOptions{K: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelevantPatterns == 0 {
		t.Error("no relevant patterns")
	}
	if len(expls) == 0 {
		t.Fatal("no explanations")
	}
	top := expls[0].String()
	if !strings.Contains(top, "ICDE") || !strings.Contains(top, "2007") {
		t.Errorf("top explanation = %s, want the ICDE 2007 counterbalance", top)
	}
}

func TestSessionAskUnknownTuple(t *testing.T) {
	s := exampleSession(t)
	_, _, err := s.Ask(
		[]string{"author", "venue", "year"},
		Count(),
		Tuple{String("NOBODY"), String("X"), Int(1900)},
		Low,
		ExplainOptions{},
	)
	if err == nil {
		t.Error("asking about a non-result tuple should error")
	}
}

func TestSessionExplainBeforeMine(t *testing.T) {
	s := NewSession(RunningExample())
	_, _, err := s.Explain(Question{}, ExplainOptions{})
	if err == nil {
		t.Error("Explain before Mine should error")
	}
}

func TestSessionSetPatterns(t *testing.T) {
	s := exampleSession(t)
	sub := s.Patterns()[:1]
	s2 := NewSession(s.Table())
	s2.SetPatterns(sub)
	q := Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      Count(),
		Values:   Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		AggValue: Int(1),
		Dir:      Low,
	}
	if _, _, err := s2.Explain(q, ExplainOptions{K: 5}); err != nil {
		t.Errorf("Explain with installed patterns failed: %v", err)
	}
}

func TestValueConstructors(t *testing.T) {
	if Int(3).Int() != 3 || Float(1.5).Float() != 1.5 || String("x").Str() != "x" || !Null().IsNull() {
		t.Error("value constructors broken")
	}
}

func TestAggConstructors(t *testing.T) {
	if Count().String() != "count(*)" {
		t.Errorf("Count() = %s", Count())
	}
	if Sum("x").String() != "sum(x)" {
		t.Errorf("Sum(x) = %s", Sum("x"))
	}
}

func TestBaselineFacade(t *testing.T) {
	s := exampleSession(t)
	q := Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      Count(),
		Values:   Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		AggValue: Int(1),
		Dir:      Low,
	}
	expls, err := ExplainBaseline(q, s.Table(), BaselineOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Error("baseline produced nothing")
	}
}

func TestGeneratorsFacade(t *testing.T) {
	dblp := GenerateDBLP(DBLPConfig{Rows: 200, Seed: 1})
	if dblp.NumRows() != 200 {
		t.Error("GenerateDBLP facade broken")
	}
	crime := GenerateCrime(CrimeConfig{Rows: 200, Seed: 1, NumAttrs: 5})
	if crime.NumRows() != 200 || len(crime.Schema()) != 5 {
		t.Error("GenerateCrime facade broken")
	}
}

func TestInjectFacade(t *testing.T) {
	tab := RunningExample()
	attrs := []string{"author", "venue", "year"}
	out := Tuple{String("AY"), String("VLDB"), Int(2006)}
	ctr := Tuple{String("AY"), String("ICDE"), Int(2006)}
	injected, gt, err := InjectCounterbalance(tab, attrs, out, ctr, 1, "low")
	if err != nil {
		t.Fatal(err)
	}
	if injected.NumRows() != tab.NumRows() || gt.Delta != 1 {
		t.Error("InjectCounterbalance facade broken")
	}
}

func TestMinerVariantsFacade(t *testing.T) {
	tab := RunningExample()
	opt := MiningOptions{
		MaxPatternSize: 2,
		Thresholds:     Thresholds{Theta: 0.3, LocalSupport: 2, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggCount},
	}
	for name, mine := range map[string]func(*Table, MiningOptions) (*MiningResult, error){
		"naive":    MinePatternsNaive,
		"sharegrp": MinePatternsShareGrp,
		"cube":     MinePatternsCube,
		"arpmine":  MinePatterns,
	} {
		res, err := mine(tab, opt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(res.Patterns) == 0 {
			t.Errorf("%s found no patterns", name)
		}
	}
}

func TestSessionAutoWidenPatternSize(t *testing.T) {
	s := NewSession(RunningExample())
	s.SetMetric(NewMetric().SetFunc("year", NumericDistance{Scale: 4}))
	s.SetAutoWidenPatternSize(true)
	// Mine deliberately narrow: ψ=2 cannot produce patterns whose F∪V
	// covers a 3-attribute question at full width.
	err := s.Mine(MiningOptions{
		MaxPatternSize: 2,
		Thresholds:     Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	narrow := len(s.Patterns())
	_, _, err = s.Ask(
		[]string{"author", "venue", "year"}, Count(),
		Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		Low, ExplainOptions{K: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Patterns()) <= narrow {
		t.Errorf("auto-widen did not re-mine: %d patterns before and after", narrow)
	}
	// The widened pool must include a full-width pattern.
	found := false
	for _, m := range s.Patterns() {
		if len(m.Pattern.GroupAttrs()) == 3 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no ψ=3 pattern after auto-widening")
	}
}

func TestSessionNoAutoWidenByDefault(t *testing.T) {
	s := NewSession(RunningExample())
	err := s.Mine(MiningOptions{
		MaxPatternSize: 2,
		Thresholds:     Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(s.Patterns())
	if _, _, err := s.Ask(
		[]string{"author", "venue", "year"}, Count(),
		Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		Low, ExplainOptions{K: 5},
	); err != nil {
		t.Fatal(err)
	}
	if len(s.Patterns()) != before {
		t.Error("Ask re-mined without auto-widen enabled")
	}
}

func TestGeneralizeFacade(t *testing.T) {
	s := exampleSession(t)
	q := Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      Count(),
		Values:   Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		AggValue: Int(1),
		Dir:      Low,
	}
	gens, err := Generalize(q, s.Table(), s.Patterns(), ExplainOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gens {
		if g.Deviation >= 0 {
			t.Errorf("low question generalization must deviate negatively: %s", g)
		}
	}
}

func TestInterventionFacade(t *testing.T) {
	tab := RunningExample()
	low := Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      Count(),
		Values:   Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		AggValue: Int(1),
		Dir:      Low,
	}
	if _, err := ExplainIntervention(low, tab, InterventionOptions{}); err != ErrInterventionLowQuestion {
		t.Errorf("low question error = %v, want ErrInterventionLowQuestion", err)
	}
	high := low
	high.Values = Tuple{String("AX"), String("ICDE"), Int(2007)}
	high.AggValue = Int(7)
	high.Dir = High
	if _, err := ExplainIntervention(high, tab, InterventionOptions{}); err != nil {
		t.Errorf("high question: %v", err)
	}
}

func TestHTTPHandlerFacade(t *testing.T) {
	h := NewHTTPHandler()
	if h == nil {
		t.Fatal("nil handler")
	}
	h.AddTable("t", RunningExample())
	out, err := RunSQL("SELECT count(*) FROM t", SQLCatalog{"t": RunningExample()})
	if err != nil || out.Row(0)[0].Int() != 150 {
		t.Errorf("RunSQL = %v, %v", out, err)
	}
	if _, _, err := ParseAggregateQuery("SELECT a, count(*) FROM t GROUP BY a"); err != nil {
		t.Errorf("ParseAggregateQuery: %v", err)
	}
	if _, _, err := ParseAggregateQuery("SELECT a FROM t"); err == nil {
		t.Error("non-aggregate query should error")
	}
}

func TestSessionSaveLoadPatterns(t *testing.T) {
	s := exampleSession(t)
	path := t.TempDir() + "/patterns.json"
	if err := s.SavePatterns(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(RunningExample())
	s2.SetMetric(NewMetric().SetFunc("year", NumericDistance{Scale: 4}))
	if err := s2.LoadPatterns(path); err != nil {
		t.Fatal(err)
	}
	if len(s2.Patterns()) != len(s.Patterns()) {
		t.Fatalf("loaded %d patterns, saved %d", len(s2.Patterns()), len(s.Patterns()))
	}
	expls, _, err := s2.Ask(
		[]string{"author", "venue", "year"}, Count(),
		Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		Low, ExplainOptions{K: 1},
	)
	if err != nil || len(expls) == 0 {
		t.Fatalf("explain with loaded patterns: %v, %d expls", err, len(expls))
	}
	// Fresh sessions refuse to save before mining.
	if err := NewSession(RunningExample()).SavePatterns(path); err == nil {
		t.Error("SavePatterns before Mine should error")
	}
	if err := s2.LoadPatterns(t.TempDir() + "/missing.json"); err == nil {
		t.Error("loading a missing file should error")
	}
}
