package cape

import (
	"testing"
)

// sumExample builds a sales-style relation where the sum(amount) per
// (region, quarter) is roughly constant, with a planted low outlier in
// one region/quarter counterbalanced by a spike in another product of the
// same region and quarter — exercising the full pipeline with a
// non-count aggregate.
func sumExample() *Table {
	tab := NewTable(Schema{
		{Name: "region", Kind: KindString},
		{Name: "product", Kind: KindString},
		{Name: "quarter", Kind: KindInt},
		{Name: "amount", Kind: KindInt},
	})
	add := func(region, product string, quarter, amount int64) {
		tab.MustAppend(Tuple{String(region), String(product), Int(quarter), Int(amount)})
	}
	regions := []string{"north", "south", "west"}
	products := []string{"widgets", "gadgets", "gizmos"}
	for _, r := range regions {
		for q := int64(1); q <= 8; q++ {
			for _, p := range products {
				// Baseline ~10 with ±1 alternation so the constant model
				// has non-degenerate scatter (chi-square goodness-of-fit
				// assumes variance of the order of the mean).
				amount := int64(9 + q%2*2)
				if r == "north" && q == 5 {
					if p == "widgets" {
						amount = 2 // the low outlier
					}
					if p == "gadgets" {
						amount = 19 // the counterbalance (totals stay 30)
					}
				}
				// Two transactions per (region, product, quarter).
				add(r, p, q, amount/2)
				add(r, p, q, amount-amount/2)
			}
		}
	}
	return tab
}

func TestSumAggregateEndToEnd(t *testing.T) {
	tab := sumExample()
	s := NewSession(tab)
	s.SetMetric(NewMetric().SetFunc("quarter", NumericDistance{Scale: 3}))
	err := s.Mine(MiningOptions{
		MaxPatternSize: 3,
		Attributes:     []string{"region", "product", "quarter"},
		Thresholds:     Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggSum},
	})
	if err != nil {
		t.Fatal(err)
	}
	// sum(amount) patterns must exist.
	foundSum := false
	for _, m := range s.Patterns() {
		if m.Pattern.Agg.Func == AggSum && m.Pattern.Agg.Arg == "amount" {
			foundSum = true
		}
	}
	if !foundSum {
		t.Fatal("no sum(amount) patterns mined")
	}

	expls, stats, err := s.Ask(
		[]string{"region", "product", "quarter"},
		Sum("amount"),
		Tuple{String("north"), String("widgets"), Int(5)},
		Low,
		ExplainOptions{K: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelevantPatterns == 0 {
		t.Fatal("no relevant sum patterns for the question")
	}
	if len(expls) == 0 {
		t.Fatal("no explanations for the sum question")
	}
	top := expls[0]
	product := findTupleAttr(top, "product")
	quarter := findTupleAttr(top, "quarter")
	if product == nil || product.Str() != "gadgets" || quarter == nil || quarter.Int() != 5 {
		t.Errorf("top sum explanation = %s, want gadgets Q5", top)
	}
	if top.Deviation <= 0 {
		t.Errorf("low question needs positive deviation: %s", top)
	}
}

func findTupleAttr(e Explanation, attr string) *Value {
	for i, a := range e.Attrs {
		if a == attr {
			v := e.Tuple[i]
			return &v
		}
	}
	return nil
}

// TestMinMaxPatternsMine: min/max aggregates over numeric attributes flow
// through mining (Definition 2 lists them alongside count and sum).
func TestMinMaxPatternsMine(t *testing.T) {
	tab := sumExample()
	res, err := MinePatterns(tab, MiningOptions{
		MaxPatternSize: 2,
		Attributes:     []string{"region", "quarter"},
		Thresholds:     Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggMin, AggMax},
	})
	if err != nil {
		t.Fatal(err)
	}
	var haveMin, haveMax bool
	for _, m := range res.Patterns {
		switch m.Pattern.Agg.Func {
		case AggMin:
			haveMin = true
		case AggMax:
			haveMax = true
		}
	}
	if !haveMin || !haveMax {
		t.Errorf("min/max patterns missing: min=%v max=%v (%d patterns)", haveMin, haveMax, len(res.Patterns))
	}
}

// TestAvgPatternsMine: avg is supported as an extension beyond the
// paper's four functions.
func TestAvgPatternsMine(t *testing.T) {
	tab := sumExample()
	res, err := MinePatterns(tab, MiningOptions{
		MaxPatternSize: 2,
		Attributes:     []string{"region", "quarter"},
		Thresholds:     Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggAvg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Error("no avg patterns mined")
	}
}
