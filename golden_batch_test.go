package cape

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// TestGoldenExplainBatch pins the full /v1/explain/batch response for
// the checked-in running-example question file — per-item statuses,
// explanation ordering, and scores — end to end through the HTTP
// handler. The file mixes valid questions, an exact duplicate, a bad
// direction, and a tuple that is not a query result, so this locks the
// per-item error contract alongside the rankings.
func TestGoldenExplainBatch(t *testing.T) {
	ts := httptest.NewServer(NewHTTPHandler())
	defer ts.Close()

	var csv bytes.Buffer
	if err := RunningExample().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/tables?name=pub", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load table status = %d", resp.StatusCode)
	}

	mineBody := `{"table":"pub","maxPatternSize":3,"theta":0.5,"localSupport":3,"lambda":0.3,"globalSupport":2,"aggregates":["count"]}`
	resp, err = http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader([]byte(mineBody)))
	if err != nil {
		t.Fatal(err)
	}
	var mined struct {
		ID       string `json:"id"`
		Patterns int    `json:"patterns"`
	}
	err = json.NewDecoder(resp.Body).Decode(&mined)
	resp.Body.Close()
	if err != nil || mined.ID == "" {
		t.Fatalf("mine response: %v (id=%q)", err, mined.ID)
	}
	if mined.Patterns != 14 {
		t.Errorf("mined patterns = %d, want 14", mined.Patterns)
	}

	// Assemble the batch body from the checked-in JSONL question file —
	// the same file `cape explain-batch -questions` takes.
	raw, err := os.ReadFile("testdata/questions_running_example.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var questions []json.RawMessage
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			questions = append(questions, json.RawMessage(line))
		}
	}
	if len(questions) != 5 {
		t.Fatalf("question file has %d lines, want 5", len(questions))
	}
	body, err := json.Marshal(map[string]interface{}{
		"patterns": mined.ID, "k": 5,
		"numeric":   map[string]float64{"year": 4},
		"questions": questions,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/explain/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var out struct {
		Items []struct {
			Index        int    `json:"index"`
			Status       int    `json:"status"`
			Question     string `json:"question"`
			Error        string `json:"error"`
			Explanations []struct {
				Attrs []string `json:"attrs"`
				Tuple []string `json:"tuple"`
				Score float64  `json:"score"`
			} `json:"explanations"`
			Stats *struct {
				RelevantPatterns int `json:"RelevantPatterns"`
			} `json:"stats"`
		} `json:"items"`
		OK     int `json:"ok"`
		Failed int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	// ---- Golden: envelope and per-item statuses ----
	if out.OK != 3 || out.Failed != 2 || len(out.Items) != 5 {
		t.Fatalf("ok=%d failed=%d items=%d, want 3/2/5", out.OK, out.Failed, len(out.Items))
	}
	wantStatus := []int{200, 200, 200, 400, 400}
	for i, it := range out.Items {
		if it.Index != i || it.Status != wantStatus[i] {
			t.Errorf("item %d: index=%d status=%d, want index=%d status=%d",
				i, it.Index, it.Status, i, wantStatus[i])
		}
	}
	if q := out.Items[0].Question; q != "why is count(*) = 1 low for (author=AX, venue=SIGKDD, year=2007)?" {
		t.Errorf("item 0 question = %q", q)
	}
	if e := out.Items[3].Error; e != `explain: unknown direction "sideways"` {
		t.Errorf("item 3 error = %q", e)
	}
	if e := out.Items[4].Error; e != "tuple [NOBODY VLDB 1999] is not a result of the question query" {
		t.Errorf("item 4 error = %q", e)
	}

	// ---- Golden: the SIGKDD-low rankings (the paper's running example),
	// same values TestGoldenRunningExample locks for the library path ----
	type golden struct {
		tuple string
		score string
	}
	render := func(item int) []golden {
		var got []golden
		for _, e := range out.Items[item].Explanations {
			tuple := "("
			for i, want := range []string{"author", "venue", "year"} {
				if i > 0 {
					tuple += ", "
				}
				for j, a := range e.Attrs {
					if a == want {
						tuple += e.Tuple[j]
						break
					}
				}
			}
			got = append(got, golden{tuple + ")", fmt.Sprintf("%.2f", e.Score)})
		}
		return got
	}
	wantLow := []golden{
		{"(AX, ICDE, 2007)", "6.35"},
		{"(AX, SIGKDD, 2006)", "6.00"},
		{"(AX, SIGKDD, 2008)", "6.00"},
		{"(AX, ICDE, 2007)", "5.20"},
		{"(AX, SIGKDD, 2006)", "4.16"},
	}
	for _, item := range []int{0, 2} { // item 2 is the exact duplicate
		got := render(item)
		if len(got) != len(wantLow) {
			t.Fatalf("item %d: %d explanations, want %d", item, len(got), len(wantLow))
		}
		for i := range wantLow {
			if got[i] != wantLow[i] {
				t.Errorf("item %d rank %d = %+v, want %+v", item, i+1, got[i], wantLow[i])
			}
		}
	}
	if out.Items[0].Stats == nil || out.Items[0].Stats.RelevantPatterns != 11 {
		t.Errorf("item 0 stats = %+v, want 11 relevant patterns", out.Items[0].Stats)
	}

	// ---- Golden: the ICDE-high rankings (the counterbalance viewed
	// from the other side) ----
	wantHigh := []golden{
		{"(AX, SIGKDD, 2007)", "0.74"},
		{"(AX, ICDE, 2006)", "0.59"},
		{"(AX, ICDE, 2008)", "0.59"},
		{"(AX, SIGKDD, 2007)", "0.58"},
		{"(AX, SIGKDD, 2007)", "0.35"},
	}
	got := render(1)
	if len(got) != len(wantHigh) {
		t.Fatalf("item 1: %d explanations, want %d", len(got), len(wantHigh))
	}
	for i := range wantHigh {
		if got[i] != wantHigh[i] {
			t.Errorf("item 1 rank %d = %+v, want %+v", i+1, got[i], wantHigh[i])
		}
	}
}
