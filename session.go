package cape

import (
	"errors"
	"fmt"

	"cape/internal/pattern"
)

// Session is the high-level entry point: it holds a relation, the
// patterns mined over it, and a distance metric, and answers user
// questions. A Session is safe for concurrent reads after Mine has
// completed.
type Session struct {
	table     *Table
	patterns  []*MinedPattern
	metric    *Metric
	mining    *MiningResult
	mineOpt   MiningOptions
	mined     bool
	autoWiden bool
}

// NewSession wraps a relation. Mine must be called before Explain.
func NewSession(t *Table) *Session {
	return &Session{table: t, metric: NewMetric()}
}

// Table returns the session's relation.
func (s *Session) Table() *Table { return s.table }

// SetMetric installs the distance metric used for scoring explanations.
func (s *Session) SetMetric(m *Metric) *Session {
	s.metric = m
	return s
}

// SetAutoWidenPatternSize lets Ask re-run mining with a larger maximum
// pattern size ψ when a question's group-by is wider than the mined
// patterns can generalize — the paper's Section-4.1 suggestion ("start
// with a lower threshold and rerun pattern mining with a larger threshold
// if a user question with a large |G| is asked").
func (s *Session) SetAutoWidenPatternSize(on bool) *Session {
	s.autoWiden = on
	return s
}

// Mine discovers the globally-holding ARPs with the ARP-MINE algorithm
// and stores them in the session.
func (s *Session) Mine(opt MiningOptions) error {
	res, err := MinePatterns(s.table, opt)
	if err != nil {
		return err
	}
	s.mining = res
	s.patterns = res.Patterns
	s.mineOpt = opt
	if s.mineOpt.MaxPatternSize == 0 {
		s.mineOpt.MaxPatternSize = 4 // the miner's default ψ
	}
	s.mined = true
	return nil
}

// Patterns returns the mined patterns (nil before Mine).
func (s *Session) Patterns() []*MinedPattern { return s.patterns }

// MiningResult returns the full mining result with timing and candidate
// statistics (nil before Mine).
func (s *Session) MiningResult() *MiningResult { return s.mining }

// SetPatterns installs externally mined or filtered patterns, e.g. to
// replay explanation generation over a pattern subset.
func (s *Session) SetPatterns(ps []*MinedPattern) { s.patterns = ps }

// Explain answers a user question with the top-k counterbalancing
// explanations.
func (s *Session) Explain(q Question, opt ExplainOptions) ([]Explanation, *ExplainStats, error) {
	if s.patterns == nil {
		return nil, nil, errors.New("cape: Mine must run before Explain (or install patterns with SetPatterns)")
	}
	if opt.Metric == nil {
		opt.Metric = s.metric
	}
	return Explain(q, s.table, s.patterns, opt)
}

// ExplainBatch answers a batch of questions in one pass, sharing the
// relevant-pattern scan and group-by results across the batch. Each
// question's answer is identical to Session.Explain on it alone;
// results align positionally with qs and per-question failures are
// wrapped with their index in the joined error.
func (s *Session) ExplainBatch(qs []Question, opt ExplainOptions) ([][]Explanation, []*ExplainStats, error) {
	if s.patterns == nil {
		return nil, nil, errors.New("cape: Mine must run before ExplainBatch (or install patterns with SetPatterns)")
	}
	if opt.Metric == nil {
		opt.Metric = s.metric
	}
	return ExplainBatch(qs, s.table, s.patterns, opt)
}

// Ask is a convenience wrapper that builds the question from its parts,
// verifies the tuple is an actual result of the aggregate query, and
// explains it.
func (s *Session) Ask(groupBy []string, agg AggSpec, values Tuple, dir Direction, opt ExplainOptions) ([]Explanation, *ExplainStats, error) {
	grouped, err := s.table.GroupBy(groupBy, []AggSpec{agg})
	if err != nil {
		return nil, nil, err
	}
	aggIdx := len(groupBy)
	var aggValue Value
	found := false
	for _, row := range grouped.Rows() {
		if Tuple(row[:aggIdx]).Equal(values) {
			aggValue = row[aggIdx]
			found = true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("cape: tuple %v is not a result of grouping by %v", values, groupBy)
	}
	q := Question{GroupBy: groupBy, Agg: agg, Values: values, AggValue: aggValue, Dir: dir}

	// The widest relevant pattern uses all of G; if mining stopped at a
	// smaller ψ, optionally re-mine so those patterns exist (Section 4.1).
	if s.autoWiden && s.mined && s.mineOpt.MaxPatternSize < len(groupBy) {
		widened := s.mineOpt
		widened.MaxPatternSize = len(groupBy)
		if err := s.Mine(widened); err != nil {
			return nil, nil, err
		}
	}
	return s.Explain(q, opt)
}

// SavePatterns writes the session's mined patterns (with their local
// models) to a JSON file, for the offline/online split.
func (s *Session) SavePatterns(path string) error {
	if s.patterns == nil {
		return errors.New("cape: no patterns to save (run Mine first)")
	}
	return pattern.WriteJSONFile(path, s.patterns)
}

// LoadPatterns installs patterns previously written by SavePatterns (or
// by `cape mine -o`), making the session ready to Explain without
// re-mining.
func (s *Session) LoadPatterns(path string) error {
	ps, err := pattern.ReadJSONFile(path)
	if err != nil {
		return err
	}
	s.patterns = ps
	return nil
}
